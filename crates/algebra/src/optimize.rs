//! Program optimization — the future-work direction the paper names in
//! §5 ("Query (and program) optimization is an important issue").
//!
//! The passes that used to live here are now *rules* inside the
//! cost-based planner ([`crate::plan`]); this module keeps the legacy
//! entry points as thin wrappers running the corresponding rule subsets
//! without a statistics catalog (so they behave exactly as before:
//! pattern-driven, unconditional, statistics-free), plus
//! [`body_is_delta_safe`], which the evaluator consults directly.
//!
//! All passes bail out (returning the program unchanged) when the
//! program uses non-ground parameters (wildcards, pairs, negative lists)
//! in targets, arguments, or `while` conditions — with wildcards, any
//! statement may read any table, so nothing is provably dead. Compiled
//! programs are fully ground, which is exactly where the passes pay off.

use crate::plan::{plan_with_rules, read_set, Rule};
use crate::program::{OpKind, Program, Statement};
use tabular_core::SymbolSet;

/// True when a `while` body is eligible for delta-driven evaluation
/// (see [`crate::eval::WhileStrategy`]).
///
/// The delta engine skips a statement when none of its inputs changed
/// since its last execution, which is sound exactly when re-execution
/// would be a no-op. That requires:
///
/// * **ground parameters throughout** — targets, arguments, and nested
///   conditions all denote fixed names (reuses the same `read_set`
///   machinery as the planner), so each statement's read and write
///   sets are known statically;
/// * **no fresh tagging** — `TUPLENEW` / `SETNEW` invent new tags on
///   every execution, so skipping a re-run changes the result (the
///   paper's determinacy-up-to-tag-isomorphism, §3.5, does not survive
///   accumulation across iterations);
/// * **no nested loops** — an inner `while` is not a pure function of
///   its read set's versions (its own iteration count varies), so only
///   straight-line bodies qualify.
///
/// Everything else in the algebra is a pure, deterministic function of
/// its arguments, so this is broader than a monotone-operations
/// whitelist: even non-monotone bodies (difference, transpose, switch)
/// are delta-safe, because skipping is keyed on *versions*, not on
/// growth.
pub fn body_is_delta_safe(body: &[Statement]) -> bool {
    let mut reads = SymbolSet::new();
    if read_set(body, &mut reads).is_none() {
        return false;
    }
    body.iter().all(|s| match s {
        Statement::While { .. } => false,
        Statement::Assign(a) => !matches!(a.op, OpKind::TupleNew { .. } | OpKind::SetNew { .. }),
    })
}

/// Eliminate dead scratch assignments, to a fixpoint. (The planner's
/// `eliminate-dead` rule; see [`crate::plan::Rule::EliminateDead`].)
pub fn eliminate_dead(program: &Program) -> Program {
    plan_with_rules(program, None, &[Rule::EliminateDead]).0
}

/// Fuse `s ← op(...); T ← COPY(s)` into `T ← op(...)` when `s` is scratch,
/// produced by the immediately preceding statement, and read nowhere else.
/// (The planner's `forward-copy` rule.)
pub fn forward_copies(program: &Program) -> Program {
    plan_with_rules(program, None, &[Rule::ForwardCopy]).0
}

/// Fuse `s ← PRODUCT(R, S); T ← SELECT[A=B](s)` into
/// `T ← FUSEDJOIN[A=B](R, S)` when `s` is scratch, produced by the
/// immediately preceding statement, read nowhere else, and `A`/`B` are
/// ground symbols (so their denotation cannot depend on the product table
/// that no longer exists). (The planner's `fuse-join` rule, run without
/// statistics: unconditional, with the evaluator deciding per argument
/// pair whether the hash-join kernel applies.)
pub fn fuse_joins(program: &Program) -> Program {
    plan_with_rules(program, None, &[Rule::FuseJoin]).0
}

/// Fuse `s₁ ← GROUP[...](R); s₂ ← CLEANUP[...](s₁); T ← PURGE[...](s₂)`
/// — and the 2-op prefix `s ← GROUP[...](R); T ← CLEANUP[...](s)` — into
/// `T ← FUSEDRESTRUCTURE[...](R)` when each scratch intermediate is
/// produced immediately before its single read and the clean-up/purge
/// parameters are rigid. (The planner's `fuse-restructure` rule.)
pub fn fuse_restructure(program: &Program) -> Program {
    plan_with_rules(program, None, &[Rule::FuseRestructure]).0
}

/// The full legacy pipeline: copy forwarding, join fusion, restructuring
/// fusion, then dead-code elimination — the statistics-free rule subset
/// of [`crate::plan::plan`], in the historical order.
pub fn optimize(program: &Program) -> Program {
    plan_with_rules(
        program,
        None,
        &[
            Rule::ForwardCopy,
            Rule::FuseJoin,
            Rule::FuseRestructure,
            Rule::EliminateDead,
        ],
    )
    .0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{run, EvalLimits};
    use crate::param::Param;
    use crate::plan::is_scratch;
    use crate::program::{OpKind, Program, Statement};
    use tabular_core::Symbol;
    use tabular_core::{fixtures, Database};

    fn scratch(n: u32) -> Symbol {
        Symbol::name(&format!("\u{1F}opt{n}"))
    }

    #[test]
    fn dead_scratch_assignments_are_removed() {
        let p = Program::new()
            .assign(
                Param::sym(scratch(1)),
                OpKind::Copy,
                vec![Param::name("Sales")],
            )
            .assign(Param::name("Out"), OpKind::Copy, vec![Param::name("Sales")]);
        let opt = eliminate_dead(&p);
        assert_eq!(opt.len(), 1);
    }

    #[test]
    fn dead_chains_are_removed_to_a_fixpoint() {
        // s1 feeds s2 feeds nothing: both must go.
        let p = Program::new()
            .assign(
                Param::sym(scratch(1)),
                OpKind::Copy,
                vec![Param::name("Sales")],
            )
            .assign(
                Param::sym(scratch(2)),
                OpKind::Copy,
                vec![Param::sym(scratch(1))],
            )
            .assign(Param::name("Out"), OpKind::Copy, vec![Param::name("Sales")]);
        assert_eq!(eliminate_dead(&p).len(), 1);
    }

    #[test]
    fn user_visible_targets_are_never_removed() {
        let p = Program::new().assign(
            Param::name("Unused"),
            OpKind::Copy,
            vec![Param::name("Sales")],
        );
        assert_eq!(eliminate_dead(&p).len(), 1);
    }

    #[test]
    fn copy_forwarding_fuses_producer_and_copy() {
        let p = Program::new()
            .assign(
                Param::sym(scratch(1)),
                OpKind::Transpose,
                vec![Param::name("Sales")],
            )
            .assign(
                Param::name("Out"),
                OpKind::Copy,
                vec![Param::sym(scratch(1))],
            );
        let opt = optimize(&p);
        assert_eq!(opt.len(), 1);
        let Statement::Assign(a) = &opt.statements[0] else {
            panic!("assignment expected");
        };
        assert_eq!(a.target, Param::name("Out"));
        assert!(matches!(a.op, OpKind::Transpose));
    }

    #[test]
    fn copy_forwarding_respects_multiple_readers() {
        // The scratch result is read twice: the copy cannot be fused away.
        let p = Program::new()
            .assign(
                Param::sym(scratch(1)),
                OpKind::Transpose,
                vec![Param::name("Sales")],
            )
            .assign(Param::name("A"), OpKind::Copy, vec![Param::sym(scratch(1))])
            .assign(Param::name("B"), OpKind::Copy, vec![Param::sym(scratch(1))]);
        assert_eq!(optimize(&p).len(), 3);
    }

    #[test]
    fn wildcard_programs_are_left_untouched() {
        let p = Program::new()
            .assign(Param::sym(scratch(1)), OpKind::Copy, vec![Param::name("X")])
            .assign(Param::star_k(1), OpKind::Transpose, vec![Param::star_k(1)]);
        // The wildcard could read the scratch table: no elimination.
        assert_eq!(optimize(&p).len(), 2);
    }

    #[test]
    fn optimizing_a_compiled_program_preserves_results() {
        // A small pipeline with real scratch traffic.
        let p = crate::parser::parse(
            "Sales <- GROUP[by {Region} on {Sold}](Sales)
             Sales <- CLEANUP[by {Part} on {_}](Sales)
             Sales <- PURGE[on {Sold} by {Region}](Sales)",
        )
        .unwrap();
        let db = fixtures::sales_info1();
        let opt = optimize(&p);
        let a = run(&p, &db, &EvalLimits::default()).unwrap();
        let b = run(&opt, &db, &EvalLimits::default()).unwrap();
        assert!(compare_visible(&a, &b));
    }

    #[test]
    fn while_bodies_are_preserved_correctly() {
        let p = Program::new()
            .assign(Param::name("T"), OpKind::Copy, vec![Param::name("Sales")])
            .while_nonempty(
                Param::name("T"),
                Program::new().assign(
                    Param::name("T"),
                    OpKind::Difference,
                    vec![Param::name("T"), Param::name("T")],
                ),
            );
        let opt = optimize(&p);
        assert_eq!(opt.len(), p.len());
        let db = fixtures::sales_info1();
        let a = run(&p, &db, &EvalLimits::default()).unwrap();
        let b = run(&opt, &db, &EvalLimits::default()).unwrap();
        assert!(compare_visible(&a, &b));
    }

    #[test]
    fn select_over_scratch_product_fuses_into_a_join() {
        let p = Program::new()
            .assign(
                Param::sym(scratch(1)),
                OpKind::Product,
                vec![Param::name("R"), Param::name("S")],
            )
            .assign(
                Param::name("Out"),
                OpKind::Select {
                    a: Param::name("B"),
                    b: Param::name("C"),
                },
                vec![Param::sym(scratch(1))],
            );
        let opt = optimize(&p);
        assert_eq!(opt.len(), 1);
        let Statement::Assign(a) = &opt.statements[0] else {
            panic!("assignment expected");
        };
        assert_eq!(a.target, Param::name("Out"));
        assert!(matches!(a.op, OpKind::FusedJoin { .. }));
        assert_eq!(a.args, vec![Param::name("R"), Param::name("S")]);

        let db = Database::from_tables([
            tabular_core::Table::relational("R", &["A", "B"], &[&["1", "2"], &["3", "4"]]),
            tabular_core::Table::relational("S", &["C", "D"], &[&["2", "x"], &["9", "y"]]),
        ]);
        let a = run(&p, &db, &EvalLimits::default()).unwrap();
        let b = run(&opt, &db, &EvalLimits::default()).unwrap();
        assert!(compare_visible(&a, &b));
    }

    #[test]
    fn fusion_respects_multiple_readers_and_visible_targets() {
        // The product result is read twice: fusing would lose it.
        let multi = Program::new()
            .assign(
                Param::sym(scratch(1)),
                OpKind::Product,
                vec![Param::name("R"), Param::name("S")],
            )
            .assign(
                Param::name("A"),
                OpKind::Select {
                    a: Param::name("B"),
                    b: Param::name("C"),
                },
                vec![Param::sym(scratch(1))],
            )
            .assign(Param::name("B"), OpKind::Copy, vec![Param::sym(scratch(1))]);
        assert_eq!(optimize(&multi).len(), 3);

        // A user-visible product is observable output: never fused away.
        let visible = Program::new()
            .assign(
                Param::name("P"),
                OpKind::Product,
                vec![Param::name("R"), Param::name("S")],
            )
            .assign(
                Param::name("Out"),
                OpKind::Select {
                    a: Param::name("B"),
                    b: Param::name("C"),
                },
                vec![Param::name("P")],
            );
        assert_eq!(optimize(&visible).len(), 2);
    }

    #[test]
    fn fusion_requires_ground_selection_attributes() {
        // A pair parameter denotes a position *in the product table*; the
        // rewrite would change what it points at.
        let p = Program::new()
            .assign(
                Param::sym(scratch(1)),
                OpKind::Product,
                vec![Param::name("R"), Param::name("S")],
            )
            .assign(
                Param::name("Out"),
                OpKind::Select {
                    a: Param::pair(Param::name("r"), Param::name("c")),
                    b: Param::name("C"),
                },
                vec![Param::sym(scratch(1))],
            );
        assert_eq!(fuse_joins(&p).len(), 2);
    }

    /// The paper's pivot chain over single-read scratches, builder-style.
    fn pivot_chain() -> Program {
        Program::new()
            .assign(
                Param::sym(scratch(1)),
                OpKind::Group {
                    by: Param::name("Region"),
                    on: Param::name("Sold"),
                },
                vec![Param::name("R")],
            )
            .assign(
                Param::sym(scratch(2)),
                OpKind::CleanUp {
                    by: Param::name("Part"),
                    on: Param::null(),
                },
                vec![Param::sym(scratch(1))],
            )
            .assign(
                Param::name("Out"),
                OpKind::Purge {
                    on: Param::name("Sold"),
                    by: Param::name("Region"),
                },
                vec![Param::sym(scratch(2))],
            )
    }

    #[test]
    fn pivot_chain_fuses_into_a_restructure() {
        let p = pivot_chain();
        let opt = optimize(&p);
        assert_eq!(opt.len(), 1);
        let Statement::Assign(a) = &opt.statements[0] else {
            panic!("assignment expected");
        };
        assert_eq!(a.target, Param::name("Out"));
        assert!(
            matches!(&a.op, OpKind::FusedRestructure(chain) if chain.purge.is_some()),
            "{:?}",
            a.op
        );
        assert_eq!(a.args, vec![Param::name("R")]);

        let db = Database::from_tables([fixtures::sales_relation()]);
        let a = run(&p, &db, &EvalLimits::default()).unwrap();
        let b = run(&opt, &db, &EvalLimits::default()).unwrap();
        assert!(compare_visible(&a, &b));
    }

    #[test]
    fn group_cleanup_prefix_fuses_without_a_purge() {
        let mut p = pivot_chain();
        p.statements.truncate(2);
        // Retarget the clean-up to a visible name so the chain ends there.
        let Statement::Assign(c) = &mut p.statements[1] else {
            panic!("assignment expected");
        };
        c.target = Param::name("Out");
        let opt = optimize(&p);
        assert_eq!(opt.len(), 1);
        let Statement::Assign(a) = &opt.statements[0] else {
            panic!("assignment expected");
        };
        assert!(matches!(
            &a.op,
            OpKind::FusedRestructure(chain) if chain.purge.is_none()
        ));

        let db = Database::from_tables([fixtures::sales_relation()]);
        let a = run(&p, &db, &EvalLimits::default()).unwrap();
        let b = run(&opt, &db, &EvalLimits::default()).unwrap();
        assert!(compare_visible(&a, &b));
    }

    #[test]
    fn restructure_fusion_respects_multiple_readers_and_visible_targets() {
        // The grouped scratch is read twice: fusing would lose it.
        let mut multi = pivot_chain();
        multi = multi.assign(
            Param::name("Again"),
            OpKind::Copy,
            vec![Param::sym(scratch(1))],
        );
        assert_eq!(fuse_restructure(&multi).len(), 4);

        // A visible intermediate is observable output: never fused away.
        let visible = crate::parser::parse(
            "G <- GROUP[by {Region} on {Sold}](R)
             C <- CLEANUP[by {Part} on {_}](G)
             Out <- PURGE[on {Sold} by {Region}](C)",
        )
        .unwrap();
        assert_eq!(fuse_restructure(&visible).len(), 3);
    }

    #[test]
    fn restructure_fusion_requires_rigid_merge_parameters() {
        // `CLEANUP by *` denotes "all column attributes *of the grouped
        // intermediate*" — the rewrite would change what it expands to.
        let mut p = pivot_chain();
        let Statement::Assign(c) = &mut p.statements[1] else {
            panic!("assignment expected");
        };
        c.op = OpKind::CleanUp {
            by: Param::star(),
            on: Param::null(),
        };
        assert_eq!(fuse_restructure(&p).len(), 3);
    }

    #[test]
    fn restructure_fusion_reaches_into_while_bodies() {
        let p = Program::new()
            .assign(Param::name("W"), OpKind::Copy, vec![Param::name("R")])
            .while_nonempty(Param::name("W"), pivot_chain());
        let opt = fuse_restructure(&p);
        assert_eq!(opt.len(), 3, "{opt:?}");
    }

    /// Compare databases on their user-visible (non-scratch) tables.
    fn compare_visible(a: &Database, b: &Database) -> bool {
        let strip = |db: &Database| {
            let mut out = db.snapshot();
            out.retain(|t| !is_scratch(t.name()));
            out
        };
        strip(a).equiv(&strip(b))
    }
}
