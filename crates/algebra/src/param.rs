//! The parameter language of tabular algebra statements (paper §3.6).
//!
//! Grammar (reconstructed from the paper's BNF):
//!
//! ```text
//! param ::= items [ "\" items ]          positive list minus negative list
//! item  ::= ⊥ | name | *ₖ | (param, param)
//! ```
//!
//! * a **name** denotes itself;
//! * **⊥** denotes the inapplicable null;
//! * a **star** `*ₖ` is a wildcard: in an *argument* position it matches
//!   any table name and binds `k`; elsewhere, a bound star denotes its
//!   binding and an unbound star denotes *all column attributes* of the
//!   table under consideration (the "everything" wildcard, which together
//!   with the negative list expresses parameters like "all attributes
//!   except A");
//! * a **pair** `(r, c)` denotes the data entries lying in rows whose row
//!   attribute is denoted by `r` and columns whose column attribute is
//!   denoted by `c` — parameters may thus refer to *data*, which is how
//!   e.g. `SWITCH` targets a particular entry.
//!
//! A parameter denotes the set of symbols denoted by its positive items
//! minus those denoted by its negative items. Contexts that need a single
//! symbol (a target name, a rename attribute, a switch entry) require the
//! denoted set to be a singleton (paper: "otherwise the effect of the
//! statement is undefined") — we surface that as
//! [`AlgebraError::NotSingleton`].

use crate::error::{AlgebraError, Result};
use std::collections::BTreeMap;
use tabular_core::{Symbol, SymbolSet, Table};

/// One item of a parameter's positive or negative list.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Item {
    /// ⊥.
    Null,
    /// A literal symbol (name or value).
    Sym(Symbol),
    /// A wildcard, identified by its subscript.
    Star(u32),
    /// `(row-selector, column-selector)` → the data entries so addressed.
    Pair(Box<Param>, Box<Param>),
}

/// A parameter: positive items minus negative items.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Param {
    /// Items whose denotations are included.
    pub positive: Vec<Item>,
    /// Items whose denotations are excluded.
    pub negative: Vec<Item>,
}

impl Param {
    /// A single literal name.
    pub fn name(s: &str) -> Param {
        Param::sym(Symbol::name(s))
    }

    /// A single literal value.
    pub fn value(s: &str) -> Param {
        Param::sym(Symbol::value(s))
    }

    /// A single literal symbol.
    pub fn sym(s: Symbol) -> Param {
        Param {
            positive: vec![Item::Sym(s)],
            negative: vec![],
        }
    }

    /// The ⊥ parameter.
    pub fn null() -> Param {
        Param {
            positive: vec![Item::Null],
            negative: vec![],
        }
    }

    /// The unsubscripted wildcard `*`.
    pub fn star() -> Param {
        Param::star_k(0)
    }

    /// A subscripted wildcard `*ₖ`.
    pub fn star_k(k: u32) -> Param {
        Param {
            positive: vec![Item::Star(k)],
            negative: vec![],
        }
    }

    /// A set of literal names.
    pub fn names(xs: &[&str]) -> Param {
        Param {
            positive: xs.iter().map(|x| Item::Sym(Symbol::name(x))).collect(),
            negative: vec![],
        }
    }

    /// `* \ xs`: every column attribute except the given names.
    pub fn all_but(xs: &[&str]) -> Param {
        Param {
            positive: vec![Item::Star(0)],
            negative: xs.iter().map(|x| Item::Sym(Symbol::name(x))).collect(),
        }
    }

    /// A pair `(row, col)` addressing data entries.
    pub fn pair(row: Param, col: Param) -> Param {
        Param {
            positive: vec![Item::Pair(Box::new(row), Box::new(col))],
            negative: vec![],
        }
    }

    /// Add negative items.
    pub fn minus(mut self, p: Param) -> Param {
        self.negative.extend(p.positive);
        self
    }

    /// True if every item is a literal symbol or ⊥ — the parameter then
    /// denotes the same set against *any* table, with *any* bindings
    /// (no wildcards to bind, no pairs to read data through). Rigid
    /// parameters are what the delta engine's literal-set plans and the
    /// restructuring fuser may lift out of their original table context.
    pub fn is_rigid(&self) -> bool {
        let literal = |i: &Item| matches!(i, Item::Sym(_) | Item::Null);
        self.positive.iter().all(literal) && self.negative.iter().all(literal)
    }

    /// The table-independent denotation of a rigid parameter (positive
    /// literals minus negative literals). Items that are not literals are
    /// ignored; guard with [`Param::is_rigid`] first.
    pub fn rigid_set(&self) -> SymbolSet {
        let expand = |items: &[Item]| {
            let mut set = SymbolSet::new();
            for item in items {
                match item {
                    Item::Null => set.insert(Symbol::Null),
                    Item::Sym(s) => set.insert(*s),
                    _ => {}
                }
            }
            set
        };
        expand(&self.positive).minus(&expand(&self.negative))
    }

    /// True if the parameter is a single ground symbol (no stars, no
    /// pairs, no negatives) — the common case for targets and literals.
    pub fn as_ground(&self) -> Option<Symbol> {
        if self.negative.is_empty() && self.positive.len() == 1 {
            match &self.positive[0] {
                Item::Sym(s) => Some(*s),
                Item::Null => Some(Symbol::Null),
                _ => None,
            }
        } else {
            None
        }
    }
}

/// Wildcard bindings established by matching the argument list against
/// table names (paper §3.6: "that wild card should be interpreted as the
/// corresponding name in the combination of table names under
/// consideration").
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Bindings {
    map: BTreeMap<u32, Symbol>,
}

impl Bindings {
    /// No bindings.
    pub fn new() -> Bindings {
        Bindings::default()
    }

    /// Look up a star's binding.
    pub fn get(&self, k: u32) -> Option<Symbol> {
        self.map.get(&k).copied()
    }

    /// Bind star `k`; returns `false` (and leaves the binding unchanged)
    /// if `k` is already bound to a different symbol.
    pub fn bind(&mut self, k: u32, s: Symbol) -> bool {
        match self.map.get(&k) {
            Some(&prev) => prev == s,
            None => {
                self.map.insert(k, s);
                true
            }
        }
    }
}

/// Try to match an *argument-position* parameter against a table name,
/// extending `bindings`. Literals must equal the name; stars bind (or must
/// agree with their binding); the negative list excludes names it denotes.
/// Pairs are not meaningful in argument position and never match.
pub fn match_name(param: &Param, name: Symbol, bindings: &Bindings) -> Option<Bindings> {
    let mut out = bindings.clone();
    let mut matched = false;
    for item in &param.positive {
        match item {
            Item::Sym(s) if *s == name => matched = true,
            Item::Null if name.is_null() => matched = true,
            Item::Star(k) => match out.get(*k) {
                Some(b) if b == name => matched = true,
                Some(_) => {}
                None => {
                    out.bind(*k, name);
                    matched = true;
                }
            },
            _ => {}
        }
        if matched {
            break;
        }
    }
    if !matched {
        return None;
    }
    for item in &param.negative {
        let excluded = match item {
            Item::Sym(s) => *s == name,
            Item::Null => name.is_null(),
            Item::Star(k) => out.get(*k) == Some(name),
            Item::Pair(_, _) => false,
        };
        if excluded {
            return None;
        }
    }
    Some(out)
}

fn denote_item(item: &Item, table: &Table, bindings: &Bindings, out: &mut SymbolSet) {
    match item {
        Item::Null => out.insert(Symbol::Null),
        Item::Sym(s) => out.insert(*s),
        Item::Star(k) => match bindings.get(*k) {
            Some(s) => out.insert(s),
            // Unbound star in a set position: every column attribute of
            // the table under consideration.
            None => {
                for a in table.col_attrs() {
                    out.insert(*a);
                }
            }
        },
        Item::Pair(rp, cp) => {
            let rows = denote_set(rp, table, bindings);
            let cols = denote_set(cp, table, bindings);
            for i in 1..=table.height() {
                if !rows.contains(table.get(i, 0)) {
                    continue;
                }
                for j in 1..=table.width() {
                    if cols.contains(table.col_attr(j)) {
                        out.insert(table.get(i, j));
                    }
                }
            }
        }
    }
}

/// The set of symbols a parameter denotes, relative to a table and the
/// current wildcard bindings.
pub fn denote_set(param: &Param, table: &Table, bindings: &Bindings) -> SymbolSet {
    let mut pos = SymbolSet::new();
    for item in &param.positive {
        denote_item(item, table, bindings, &mut pos);
    }
    let mut neg = SymbolSet::new();
    for item in &param.negative {
        denote_item(item, table, bindings, &mut neg);
    }
    pos.minus(&neg)
}

/// The single symbol a parameter denotes; errors unless the denotation is
/// a singleton.
pub fn denote_single(
    param: &Param,
    table: &Table,
    bindings: &Bindings,
    context: &'static str,
) -> Result<Symbol> {
    let set = denote_set(param, table, bindings);
    if set.len() == 1 {
        Ok(set.iter().next().expect("len checked"))
    } else {
        Err(AlgebraError::NotSingleton {
            context,
            got: set.len(),
        })
    }
}

/// Resolve a *target* (or `while`-condition) parameter to a table name
/// using bindings only — no table context exists for the left-hand side.
pub fn denote_target(param: &Param, bindings: &Bindings) -> Result<Symbol> {
    if param.negative.is_empty() && param.positive.len() == 1 {
        match &param.positive[0] {
            Item::Sym(s) => return Ok(*s),
            Item::Star(k) => {
                return bindings.get(*k).ok_or(AlgebraError::UnboundWildcard(*k));
            }
            _ => {}
        }
    }
    Err(AlgebraError::BadTarget)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nm(x: &str) -> Symbol {
        Symbol::name(x)
    }

    fn sample() -> Table {
        Table::from_grid(&[
            &["Sales", "Part", "Sold", "Sold"],
            &["Region", "_", "east", "west"],
            &["_", "nuts", "50", "60"],
        ])
        .unwrap()
    }

    #[test]
    fn literal_matches_its_own_name() {
        let p = Param::name("Sales");
        assert!(match_name(&p, nm("Sales"), &Bindings::new()).is_some());
        assert!(match_name(&p, nm("Other"), &Bindings::new()).is_none());
    }

    #[test]
    fn star_binds_and_stays_consistent() {
        let p = Param::star_k(1);
        let b = match_name(&p, nm("Sales"), &Bindings::new()).unwrap();
        assert_eq!(b.get(1), Some(nm("Sales")));
        // A second match with the same star must agree.
        assert!(match_name(&p, nm("Sales"), &b).is_some());
        assert!(match_name(&p, nm("Other"), &b).is_none());
    }

    #[test]
    fn negative_list_excludes() {
        let p = Param::star().minus(Param::name("Skip"));
        assert!(match_name(&p, nm("Sales"), &Bindings::new()).is_some());
        assert!(match_name(&p, nm("Skip"), &Bindings::new()).is_none());
    }

    #[test]
    fn set_denotation_of_literals_and_null() {
        let p = Param {
            positive: vec![Item::Sym(nm("Part")), Item::Null],
            negative: vec![],
        };
        let set = denote_set(&p, &sample(), &Bindings::new());
        assert!(set.contains(nm("Part")));
        assert!(set.contains(Symbol::Null));
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn unbound_star_denotes_all_column_attributes() {
        let set = denote_set(&Param::star(), &sample(), &Bindings::new());
        assert!(set.contains(nm("Part")));
        assert!(set.contains(nm("Sold")));
        assert_eq!(set.len(), 2); // Sold deduplicated
    }

    #[test]
    fn all_but_subtracts() {
        let set = denote_set(&Param::all_but(&["Part"]), &sample(), &Bindings::new());
        assert!(!set.contains(nm("Part")));
        assert!(set.contains(nm("Sold")));
    }

    #[test]
    fn bound_star_denotes_its_binding() {
        let mut b = Bindings::new();
        b.bind(2, nm("Part"));
        let set = denote_set(&Param::star_k(2), &sample(), &b);
        assert_eq!(set.len(), 1);
        assert!(set.contains(nm("Part")));
    }

    #[test]
    fn pair_addresses_data_entries() {
        // Entries in rows with row attribute Region under columns named
        // Sold: the region header values.
        let p = Param::pair(Param::name("Region"), Param::name("Sold"));
        let set = denote_set(&p, &sample(), &Bindings::new());
        assert!(set.contains(Symbol::value("east")));
        assert!(set.contains(Symbol::value("west")));
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn pair_with_null_row_selector_reads_ordinary_rows() {
        let p = Param::pair(Param::null(), Param::name("Part"));
        let set = denote_set(&p, &sample(), &Bindings::new());
        // Only the ⊥-attributed data row qualifies; the Region header row
        // (row attribute Region) is excluded.
        assert_eq!(set.len(), 1);
        assert!(set.contains(Symbol::value("nuts")));
    }

    #[test]
    fn singleton_enforcement() {
        let t = sample();
        assert!(denote_single(&Param::name("Part"), &t, &Bindings::new(), "x").is_ok());
        let err = denote_single(&Param::star(), &t, &Bindings::new(), "x").unwrap_err();
        assert!(matches!(err, AlgebraError::NotSingleton { got: 2, .. }));
    }

    #[test]
    fn target_resolution() {
        assert_eq!(
            denote_target(&Param::name("T"), &Bindings::new()).unwrap(),
            nm("T")
        );
        let mut b = Bindings::new();
        b.bind(0, nm("Bound"));
        assert_eq!(denote_target(&Param::star(), &b).unwrap(), nm("Bound"));
        assert!(matches!(
            denote_target(&Param::star_k(9), &Bindings::new()),
            Err(AlgebraError::UnboundWildcard(9))
        ));
        assert!(denote_target(&Param::names(&["A", "B"]), &Bindings::new()).is_err());
    }
}
