//! A textual concrete syntax for tabular algebra programs.
//!
//! The paper presents TA abstractly (`T ← (operation)(parameter
//! list)(argument list)`); this module gives it a parseable ASCII form so
//! programs can be written in examples, docs, and tests and pretty-printed
//! back ([`crate::pretty`]):
//!
//! ```text
//! -- Figure 4 of the paper:
//! Sales <- GROUP[by {Region} on {Sold}](Sales)
//! -- Figure 5:
//! Flat  <- MERGE[on {Sold} by {Region}](Sales)
//! -- a loop:
//! while Work do
//!   Work <- DIFFERENCE(Work, Done)
//! end
//! ```
//!
//! Parameter items: bare identifiers are names, `v:x` is a value, `n:x` a
//! name explicitly, `"quoted strings"` allow arbitrary characters, `_` is
//! ⊥, `*` / `*3` are (subscripted) wildcards, `(row, col)` is an
//! entry-addressing pair, and `{a, b \ c}` is a set parameter with a
//! negative list after `\`.

use crate::error::{AlgebraError, Result};
use crate::param::{Item, Param};
use crate::program::{Assignment, OpKind, Program, RestructureChain, Statement};
use tabular_core::Symbol;

// ----------------------------------------------------------------------
// Lexer
// ----------------------------------------------------------------------

#[derive(Clone, PartialEq, Eq, Debug)]
enum Tok {
    Ident(String),
    Value(String),
    NameTagged(String),
    Star(u32),
    Null,
    LBrace,
    RBrace,
    LParen,
    RParen,
    LBracket,
    RBracket,
    Comma,
    Backslash,
    Arrow,  // <-
    Eq,     // =
    MapsTo, // ->
}

struct Lexer<'a> {
    src: &'a str,
    pos: usize,
    toks: Vec<(usize, Tok)>,
}

fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_' || c == '.'
}

impl<'a> Lexer<'a> {
    fn err(&self, msg: impl Into<String>) -> AlgebraError {
        AlgebraError::Parse {
            at: self.pos,
            msg: msg.into(),
        }
    }

    fn lex(mut self) -> Result<Vec<(usize, Tok)>> {
        let bytes = self.src;
        while self.pos < bytes.len() {
            // `pos` only ever advances by whole-character byte counts, so
            // it stays on a char boundary — but this lexer faces untrusted
            // wire input, so a bookkeeping bug must surface as a parse
            // error, never a slice panic.
            let Some(rest) = bytes.get(self.pos..) else {
                return Err(self.err("lexer lost its position"));
            };
            let Some(c) = rest.chars().next() else {
                return Err(self.err("lexer lost its position"));
            };
            let start = self.pos;
            match c {
                c if c.is_whitespace() => self.pos += c.len_utf8(),
                '-' if rest.starts_with("--") => {
                    // Line comment.
                    self.pos += rest.find('\n').unwrap_or(rest.len());
                }
                '-' if rest.starts_with("->") => {
                    self.toks.push((start, Tok::MapsTo));
                    self.pos += 2;
                }
                '<' if rest.starts_with("<-") => {
                    self.toks.push((start, Tok::Arrow));
                    self.pos += 2;
                }
                '{' => {
                    self.toks.push((start, Tok::LBrace));
                    self.pos += 1;
                }
                '}' => {
                    self.toks.push((start, Tok::RBrace));
                    self.pos += 1;
                }
                '(' => {
                    self.toks.push((start, Tok::LParen));
                    self.pos += 1;
                }
                ')' => {
                    self.toks.push((start, Tok::RParen));
                    self.pos += 1;
                }
                '[' => {
                    self.toks.push((start, Tok::LBracket));
                    self.pos += 1;
                }
                ']' => {
                    self.toks.push((start, Tok::RBracket));
                    self.pos += 1;
                }
                ',' => {
                    self.toks.push((start, Tok::Comma));
                    self.pos += 1;
                }
                '\\' => {
                    self.toks.push((start, Tok::Backslash));
                    self.pos += 1;
                }
                '=' => {
                    self.toks.push((start, Tok::Eq));
                    self.pos += 1;
                }
                '*' => {
                    self.pos += 1;
                    let digits: String = bytes[self.pos..]
                        .chars()
                        .take_while(|c| c.is_ascii_digit())
                        .collect();
                    self.pos += digits.len();
                    let k = if digits.is_empty() {
                        0
                    } else {
                        digits.parse().map_err(|_| self.err("bad wildcard index"))?
                    };
                    self.toks.push((start, Tok::Star(k)));
                }
                '"' => {
                    let (s, consumed) = self.lex_quoted(&rest[1..])?;
                    self.toks.push((start, Tok::Ident(s)));
                    self.pos += consumed + 1;
                }
                _ if is_ident_char(c) => {
                    let word: String = rest.chars().take_while(|&c| is_ident_char(c)).collect();
                    self.pos += word.len();
                    // Tagged forms: v:x, n:x, possibly quoted.
                    if (word == "v" || word == "n")
                        && bytes.get(self.pos..).is_some_and(|r| r.starts_with(':'))
                    {
                        self.pos += 1;
                        let rest2 = bytes.get(self.pos..).unwrap_or("");
                        let text = if let Some(body) = rest2.strip_prefix('"') {
                            let (s, consumed) = self.lex_quoted(body)?;
                            self.pos += consumed + 1;
                            s
                        } else {
                            let w: String =
                                rest2.chars().take_while(|&c| is_ident_char(c)).collect();
                            if w.is_empty() {
                                return Err(self.err("expected text after tag"));
                            }
                            self.pos += w.len();
                            w
                        };
                        self.toks.push((
                            start,
                            if word == "v" {
                                Tok::Value(text)
                            } else {
                                Tok::NameTagged(text)
                            },
                        ));
                    } else if word == "_" {
                        self.toks.push((start, Tok::Null));
                    } else {
                        self.toks.push((start, Tok::Ident(word)));
                    }
                }
                _ => return Err(self.err(format!("unexpected character {c:?}"))),
            }
        }
        Ok(self.toks)
    }

    /// Lex a quoted string given the text *after* the opening quote;
    /// returns the contents and the byte count consumed *including* the
    /// closing quote.
    fn lex_quoted(&self, rest: &str) -> Result<(String, usize)> {
        let mut out = String::new();
        let mut chars = rest.char_indices();
        while let Some((i, c)) = chars.next() {
            match c {
                '"' => return Ok((out, i + 1)),
                '\\' => match chars.next() {
                    Some((_, e)) => out.push(e),
                    None => break,
                },
                _ => out.push(c),
            }
        }
        Err(self.err("unterminated string"))
    }
}

// ----------------------------------------------------------------------
// Parser
// ----------------------------------------------------------------------

/// Maximum nesting depth of the recursive-descent parser (`while` bodies,
/// parenthesized entry pairs). The grammar never needs deep nesting in
/// practice, but the parser faces untrusted wire input: without a cap, a
/// body like `"((((("` × 100k recurses once per character and overflows
/// the stack — an abort, not an unwind, so a single malformed request
/// would take down the whole query service. Deeper-than-`MAX_DEPTH` input
/// is rejected with a regular parse error instead.
const MAX_DEPTH: usize = 128;

struct Parser {
    toks: Vec<(usize, Tok)>,
    pos: usize,
    depth: usize,
}

/// Runs `body` with the parser's nesting depth incremented, erroring out
/// (rather than recursing further) past [`MAX_DEPTH`].
macro_rules! nested {
    ($self:ident, $body:expr) => {{
        if $self.depth >= MAX_DEPTH {
            return Err($self.err(format!("nesting deeper than {MAX_DEPTH}")));
        }
        $self.depth += 1;
        let out = $body;
        $self.depth -= 1;
        out
    }};
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|(_, t)| t)
    }

    fn at(&self) -> usize {
        self.toks
            .get(self.pos)
            .or_else(|| self.toks.last())
            .map_or(0, |(p, _)| *p)
    }

    fn err(&self, msg: impl Into<String>) -> AlgebraError {
        AlgebraError::Parse {
            at: self.at(),
            msg: msg.into(),
        }
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|(_, t)| t.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, want: &Tok, what: &str) -> Result<()> {
        match self.next() {
            Some(ref t) if t == want => Ok(()),
            other => Err(self.err(format!("expected {what}, found {other:?}"))),
        }
    }

    fn keyword(&mut self, kw: &str) -> Result<()> {
        match self.next() {
            Some(Tok::Ident(w)) if w.eq_ignore_ascii_case(kw) => Ok(()),
            other => Err(self.err(format!("expected keyword {kw:?}, found {other:?}"))),
        }
    }

    fn peek_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Tok::Ident(w)) if w.eq_ignore_ascii_case(kw))
    }

    fn parse_program(&mut self) -> Result<Vec<Statement>> {
        nested!(self, self.parse_program_inner())
    }

    fn parse_program_inner(&mut self) -> Result<Vec<Statement>> {
        let mut stmts = Vec::new();
        while self.peek().is_some() && !self.peek_keyword("end") {
            stmts.push(self.parse_statement()?);
        }
        Ok(stmts)
    }

    fn parse_statement(&mut self) -> Result<Statement> {
        if self.peek_keyword("while") {
            self.keyword("while")?;
            let cond = self.parse_param()?;
            self.keyword("do")?;
            let body = self.parse_program()?;
            self.keyword("end")?;
            return Ok(Statement::While { cond, body });
        }
        let target = self.parse_param()?;
        self.expect(&Tok::Arrow, "`<-`")?;
        let op_name = match self.next() {
            Some(Tok::Ident(w)) => w.to_ascii_uppercase(),
            other => return Err(self.err(format!("expected operation name, found {other:?}"))),
        };
        let op = self.parse_op(&op_name)?;
        let args = self.parse_args()?;
        Ok(Statement::Assign(Assignment { target, op, args }))
    }

    fn parse_op(&mut self, name: &str) -> Result<OpKind> {
        let op = match name {
            "UNION" => OpKind::Union,
            "DIFFERENCE" => OpKind::Difference,
            "INTERSECT" => OpKind::Intersect,
            "PRODUCT" => OpKind::Product,
            "TRANSPOSE" => OpKind::Transpose,
            "COPY" => OpKind::Copy,
            "CLASSICALUNION" => OpKind::ClassicalUnion,
            "RENAME" => {
                self.expect(&Tok::LBracket, "`[`")?;
                let from = self.parse_param()?;
                self.expect(&Tok::MapsTo, "`->`")?;
                let to = self.parse_param()?;
                self.expect(&Tok::RBracket, "`]`")?;
                OpKind::Rename { from, to }
            }
            "PROJECT" => {
                self.expect(&Tok::LBracket, "`[`")?;
                let attrs = self.parse_param()?;
                self.expect(&Tok::RBracket, "`]`")?;
                OpKind::Project { attrs }
            }
            "SELECT" => {
                self.expect(&Tok::LBracket, "`[`")?;
                let a = self.parse_param()?;
                self.expect(&Tok::Eq, "`=`")?;
                let b = self.parse_param()?;
                self.expect(&Tok::RBracket, "`]`")?;
                OpKind::Select { a, b }
            }
            "FUSEDJOIN" => {
                self.expect(&Tok::LBracket, "`[`")?;
                let a = self.parse_param()?;
                self.expect(&Tok::Eq, "`=`")?;
                let b = self.parse_param()?;
                self.expect(&Tok::RBracket, "`]`")?;
                OpKind::FusedJoin { a, b }
            }
            "SELECTCONST" => {
                self.expect(&Tok::LBracket, "`[`")?;
                let a = self.parse_param()?;
                self.expect(&Tok::Eq, "`=`")?;
                let v = self.parse_param()?;
                self.expect(&Tok::RBracket, "`]`")?;
                OpKind::SelectConst { a, v }
            }
            "GROUP" => {
                self.expect(&Tok::LBracket, "`[`")?;
                self.keyword("by")?;
                let by = self.parse_param()?;
                self.keyword("on")?;
                let on = self.parse_param()?;
                self.expect(&Tok::RBracket, "`]`")?;
                OpKind::Group { by, on }
            }
            "MERGE" => {
                self.expect(&Tok::LBracket, "`[`")?;
                self.keyword("on")?;
                let on = self.parse_param()?;
                self.keyword("by")?;
                let by = self.parse_param()?;
                self.expect(&Tok::RBracket, "`]`")?;
                OpKind::Merge { on, by }
            }
            "SPLIT" => {
                self.expect(&Tok::LBracket, "`[`")?;
                self.keyword("on")?;
                let on = self.parse_param()?;
                self.expect(&Tok::RBracket, "`]`")?;
                OpKind::Split { on }
            }
            "COLLAPSE" => {
                self.expect(&Tok::LBracket, "`[`")?;
                self.keyword("by")?;
                let by = self.parse_param()?;
                self.expect(&Tok::RBracket, "`]`")?;
                OpKind::Collapse { by }
            }
            "SWITCH" => {
                self.expect(&Tok::LBracket, "`[`")?;
                let entry = self.parse_param()?;
                self.expect(&Tok::RBracket, "`]`")?;
                OpKind::Switch { entry }
            }
            "CLEANUP" => {
                self.expect(&Tok::LBracket, "`[`")?;
                self.keyword("by")?;
                let by = self.parse_param()?;
                self.keyword("on")?;
                let on = self.parse_param()?;
                self.expect(&Tok::RBracket, "`]`")?;
                OpKind::CleanUp { by, on }
            }
            "PURGE" => {
                self.expect(&Tok::LBracket, "`[`")?;
                self.keyword("on")?;
                let on = self.parse_param()?;
                self.keyword("by")?;
                let by = self.parse_param()?;
                self.expect(&Tok::RBracket, "`]`")?;
                OpKind::Purge { on, by }
            }
            "FUSEDRESTRUCTURE" => {
                self.expect(&Tok::LBracket, "`[`")?;
                self.keyword("group")?;
                self.keyword("by")?;
                let group_by = self.parse_param()?;
                self.keyword("on")?;
                let group_on = self.parse_param()?;
                self.keyword("cleanup")?;
                self.keyword("by")?;
                let cleanup_by = self.parse_param()?;
                self.keyword("on")?;
                let cleanup_on = self.parse_param()?;
                let purge = if self.peek_keyword("purge") {
                    self.keyword("purge")?;
                    self.keyword("on")?;
                    let on = self.parse_param()?;
                    self.keyword("by")?;
                    let by = self.parse_param()?;
                    Some((on, by))
                } else {
                    None
                };
                self.expect(&Tok::RBracket, "`]`")?;
                OpKind::FusedRestructure(Box::new(RestructureChain {
                    group_by,
                    group_on,
                    cleanup_by,
                    cleanup_on,
                    purge,
                }))
            }
            "TUPLENEW" => {
                self.expect(&Tok::LBracket, "`[`")?;
                let attr = self.parse_param()?;
                self.expect(&Tok::RBracket, "`]`")?;
                OpKind::TupleNew { attr }
            }
            "SETNEW" => {
                self.expect(&Tok::LBracket, "`[`")?;
                let attr = self.parse_param()?;
                self.expect(&Tok::RBracket, "`]`")?;
                OpKind::SetNew { attr }
            }
            _ => return Err(self.err(format!("unknown operation {name:?}"))),
        };
        Ok(op)
    }

    fn parse_args(&mut self) -> Result<Vec<Param>> {
        self.expect(&Tok::LParen, "`(`")?;
        let mut args = Vec::new();
        if self.peek() != Some(&Tok::RParen) {
            loop {
                args.push(self.parse_param()?);
                match self.next() {
                    Some(Tok::Comma) => continue,
                    Some(Tok::RParen) => break,
                    other => return Err(self.err(format!("expected `,` or `)`, found {other:?}"))),
                }
            }
        } else {
            self.next();
        }
        Ok(args)
    }

    /// A parameter: either a single item or a braced list with an optional
    /// negative part after `\`.
    fn parse_param(&mut self) -> Result<Param> {
        nested!(self, self.parse_param_inner())
    }

    fn parse_param_inner(&mut self) -> Result<Param> {
        if self.peek() == Some(&Tok::LBrace) {
            self.next();
            let mut param = Param::default();
            let mut negative = false;
            loop {
                match self.peek() {
                    Some(Tok::RBrace) => {
                        self.next();
                        break;
                    }
                    Some(Tok::Comma) => {
                        self.next();
                    }
                    Some(Tok::Backslash) => {
                        self.next();
                        negative = true;
                    }
                    Some(_) => {
                        let item = self.parse_item()?;
                        if negative {
                            param.negative.push(item);
                        } else {
                            param.positive.push(item);
                        }
                    }
                    None => return Err(self.err("unterminated `{`")),
                }
            }
            Ok(param)
        } else {
            let item = self.parse_item()?;
            // A bare item may still carry a negative list: `* \ A`.
            let mut param = Param {
                positive: vec![item],
                negative: vec![],
            };
            while self.peek() == Some(&Tok::Backslash) {
                self.next();
                param.negative.push(self.parse_item()?);
            }
            Ok(param)
        }
    }

    fn parse_item(&mut self) -> Result<Item> {
        match self.next() {
            Some(Tok::Ident(w)) | Some(Tok::NameTagged(w)) => Ok(Item::Sym(Symbol::name(&w))),
            Some(Tok::Value(w)) => Ok(Item::Sym(Symbol::value(&w))),
            Some(Tok::Null) => Ok(Item::Null),
            Some(Tok::Star(k)) => Ok(Item::Star(k)),
            Some(Tok::LParen) => {
                let row = self.parse_param()?;
                self.expect(&Tok::Comma, "`,`")?;
                let col = self.parse_param()?;
                self.expect(&Tok::RParen, "`)`")?;
                Ok(Item::Pair(Box::new(row), Box::new(col)))
            }
            other => Err(self.err(format!("expected parameter item, found {other:?}"))),
        }
    }
}

/// Parse a tabular algebra program from its textual form.
pub fn parse(src: &str) -> Result<Program> {
    let toks = Lexer {
        src,
        pos: 0,
        toks: Vec::new(),
    }
    .lex()?;
    let mut p = Parser {
        toks,
        pos: 0,
        depth: 0,
    };
    let statements = p.parse_program()?;
    if p.peek().is_some() {
        return Err(p.err("trailing input"));
    }
    Ok(Program { statements })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{run, EvalLimits};
    use tabular_core::fixtures;

    #[test]
    fn parses_figure_4_statement() {
        let p = parse("Sales <- GROUP[by {Region} on {Sold}](Sales)").unwrap();
        assert_eq!(p.statements.len(), 1);
        let out = run(&p, &fixtures::sales_info1(), &EvalLimits::default()).unwrap();
        assert_eq!(
            out.table_str("Sales").unwrap(),
            &fixtures::figure4_grouped()
        );
    }

    #[test]
    fn parses_figure_5_statement() {
        let p = parse("Sales <- MERGE[on {Sold} by {Region}](Sales)").unwrap();
        let out = run(&p, &fixtures::sales_info2(), &EvalLimits::default()).unwrap();
        assert_eq!(out.table_str("Sales").unwrap(), &fixtures::figure5_merged());
    }

    #[test]
    fn parses_every_operation() {
        let src = r#"
            -- all operations in one program
            T <- UNION(R, S)
            T <- DIFFERENCE(R, S)
            T <- INTERSECT(R, S)
            T <- PRODUCT(R, S)
            T <- CLASSICALUNION(R, S)
            T <- RENAME[A -> B](R)
            T <- PROJECT[{A, B}](R)
            T <- SELECT[A = B](R)
            T <- SELECTCONST[A = v:50](R)
            T <- GROUP[by {Region} on {Sold}](R)
            T <- MERGE[on {Sold} by {Region}](R)
            T <- SPLIT[on {Region}](R)
            T <- COLLAPSE[by {Region}](R)
            T <- TRANSPOSE(R)
            T <- SWITCH[v:east](R)
            T <- CLEANUP[by {Part} on {_}](R)
            T <- PURGE[on {Sold} by {Region}](R)
            T <- FUSEDRESTRUCTURE[group by {Region} on {Sold} cleanup by {Part} on {_} purge on {Sold} by {Region}](R)
            T <- FUSEDRESTRUCTURE[group by {Region} on {Sold} cleanup by {Part} on {_}](R)
            T <- TUPLENEW[Id](R)
            T <- SETNEW[Tag](R)
            T <- COPY(R)
        "#;
        let p = parse(src).unwrap();
        assert_eq!(p.statements.len(), 22);
    }

    #[test]
    fn parses_fused_restructure_clauses() {
        let p =
            parse("T <- FUSEDRESTRUCTURE[group by {Region} on {Sold} cleanup by {Part} on {_}](R)")
                .unwrap();
        let Statement::Assign(a) = &p.statements[0] else {
            panic!("expected assignment")
        };
        let OpKind::FusedRestructure(chain) = &a.op else {
            panic!("expected fused restructure")
        };
        assert!(chain.purge.is_none());
        assert!(parse("T <- FUSEDRESTRUCTURE[group by {A} on {B}](R)").is_err());
        assert!(parse("T <- FUSEDRESTRUCTURE[cleanup by {A} on {B}](R)").is_err());
    }

    #[test]
    fn parses_while_loops() {
        let src = "while T do T <- DIFFERENCE(T, T) end";
        let p = parse(src).unwrap();
        assert!(matches!(&p.statements[0], Statement::While { body, .. } if body.len() == 1));
    }

    #[test]
    fn parses_wildcards_and_negatives() {
        let p = parse("*1 <- PROJECT[{* \\ Region}](*1)").unwrap();
        let Statement::Assign(a) = &p.statements[0] else {
            panic!("expected assignment")
        };
        assert_eq!(a.target, Param::star_k(1));
        let OpKind::Project { attrs } = &a.op else {
            panic!("expected project")
        };
        assert_eq!(attrs.positive, vec![Item::Star(0)]);
        assert_eq!(attrs.negative, vec![Item::Sym(Symbol::name("Region"))]);
    }

    #[test]
    fn parses_pairs_and_quoted_strings() {
        let p = parse(r#"T <- SWITCH[(Region, "Sold")](R)"#).unwrap();
        let Statement::Assign(a) = &p.statements[0] else {
            panic!("expected assignment")
        };
        let OpKind::Switch { entry } = &a.op else {
            panic!("expected switch")
        };
        assert!(matches!(entry.positive[0], Item::Pair(_, _)));
    }

    #[test]
    fn parses_null_and_value_tags() {
        let p = parse("T <- CLEANUP[by {A} on {_, v:east}](R)").unwrap();
        let Statement::Assign(a) = &p.statements[0] else {
            panic!("expected assignment")
        };
        let OpKind::CleanUp { on, .. } = &a.op else {
            panic!("expected cleanup")
        };
        assert!(on.positive.contains(&Item::Null));
        assert!(on.positive.contains(&Item::Sym(Symbol::value("east"))));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("T <- FROBNICATE(R)").is_err());
        assert!(parse("T <-").is_err());
        assert!(parse("T <- UNION(R, S) garbage ?").is_err());
        assert!(parse("while T do T <- COPY(R)").is_err()); // missing end
        assert!(parse(r#"T <- SWITCH["unterminated](R)"#).is_err());
    }

    #[test]
    fn deep_nesting_is_rejected_not_overflowed() {
        // Untrusted input: without the depth cap each of these recursed
        // once per character and overflowed the stack (a process abort,
        // not an unwind).
        let bomb = "(".repeat(200_000);
        assert!(matches!(
            parse(&format!("T <- SWITCH[{bomb}](R)")),
            Err(AlgebraError::Parse { .. })
        ));
        assert!(matches!(parse(&bomb), Err(AlgebraError::Parse { .. })));
        let whiles = "while W do ".repeat(200_000);
        assert!(matches!(parse(&whiles), Err(AlgebraError::Parse { .. })));
        // Reasonable nesting still parses.
        let ok = format!("T <- SWITCH[{}A{}](R)", "(".repeat(20), ",B)".repeat(20));
        assert!(parse(&ok).is_ok(), "20-deep pair nesting should parse");
    }

    #[test]
    fn comments_are_skipped() {
        let p = parse("-- nothing here\nT <- COPY(R) -- trailing\n").unwrap();
        assert_eq!(p.statements.len(), 1);
    }

    #[test]
    fn empty_program_parses() {
        assert!(parse("").unwrap().is_empty());
        assert!(parse("  -- only a comment").unwrap().is_empty());
    }
}
