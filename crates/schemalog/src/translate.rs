//! **Theorem 4.5**: every SchemaLog_d program has an equivalent tabular
//! algebra program.
//!
//! The translation follows the reduction structure of the paper's proof:
//! the SchemaLog database is its quadruple view — a single fixed-arity
//! relation `Quad(Rel, Tid, Attr, Val)`, the same shape as the canonical
//! representation of §4.1 — over which each rule becomes a relational
//! algebra expression (joins via product + select, constants via constant
//! selection, negation via difference), recursion becomes `while`, and
//! the whole `FO + while` program is then compiled into tabular algebra by
//! the Theorem 4.1 compiler.
//!
//! Scope: equality built-ins (`=`, `!=`) translate directly. The order
//! built-ins (`<`, `<=`, …) are interpreted predicates outside FO over
//! uninterpreted symbols; they translate *given the order as data* — the
//! standard datalog move — via an explicit strict-order relation
//! `Ord(Lo, Hi)` over the active domain, which [`order_relation`]
//! materializes and [`run_translated`] supplies automatically when the
//! program needs it. [`translate`] (without the order relation) rejects
//! order built-ins with [`SlError::Untranslatable`].

use crate::ast::{Atom, CmpOp, Literal, Rule, SlProgram, Term};
use crate::error::{Result, SlError};
use crate::quads::QuadDb;
use crate::stratify::stratify;
use std::collections::HashMap;
use tabular_core::{Istr, Symbol};
use tabular_relational::expr::RelExpr;
use tabular_relational::program::FoProgram;
use tabular_relational::relation::RelDatabase;

/// The name of the quad relation in the FO/TA pipeline.
pub fn quad_rel() -> Symbol {
    Symbol::name("Quad")
}

const SLOTS: [&str; 4] = ["Rel", "Tid", "Attr", "Val"];

fn var_col(v: Istr) -> String {
    format!("\u{1F}v{}", v.index())
}

fn atom_col(i: usize, k: usize) -> String {
    format!("\u{1F}q{i}x{k}")
}

fn sym_to_cell(s: Symbol) -> String {
    match s {
        Symbol::Null => "_".to_owned(),
        Symbol::Name(i) => format!("n:{}", i.as_str()),
        Symbol::Value(i) => format!("v:{}", i.as_str()),
    }
}

/// Static safety check: head, negated, and comparison variables must occur
/// in a positive body atom.
pub fn check_safety(program: &SlProgram) -> Result<()> {
    for (ri, rule) in program.rules.iter().enumerate() {
        let mut bound: Vec<Istr> = Vec::new();
        for lit in &rule.body {
            if let Literal::Pos(a) = lit {
                bound.extend(a.vars());
            }
        }
        let check = |t: Term| -> Result<()> {
            match t {
                Term::Var(v) if !bound.contains(&v) => Err(SlError::Unsafe { var: v, rule: ri }),
                _ => Ok(()),
            }
        };
        for h in &rule.head {
            for t in h.terms() {
                check(t)?;
            }
        }
        // Negated atoms may carry unbound variables — they are read as
        // existentially quantified under the negation (¬∃U …) — so only
        // comparison terms need a binding.
        for lit in &rule.body {
            if let Literal::Cmp { lhs, rhs, .. } = lit {
                check(*lhs)?;
                check(*rhs)?;
            }
        }
    }
    Ok(())
}

/// Translate one rule body into a relational expression over `Quad` whose
/// columns are the rule's variables (column names from the reserved
/// namespace), deduplicated.
fn body_expr(
    rule: &Rule,
    rule_idx: usize,
    with_order: bool,
) -> Result<(RelExpr, HashMap<Istr, String>)> {
    let pos_atoms: Vec<(usize, &Atom)> = rule
        .body
        .iter()
        .enumerate()
        .filter_map(|(i, l)| match l {
            Literal::Pos(a) => Some((i, a)),
            _ => None,
        })
        .collect();

    // First-occurrence column of each variable, and the per-atom exprs.
    let mut first: HashMap<Istr, String> = HashMap::new();
    let mut equalities: Vec<(String, String)> = Vec::new();
    let mut joined: Option<RelExpr> = None;

    for (i, atom) in &pos_atoms {
        let mut e = RelExpr::Rel(quad_rel());
        for (k, slot) in SLOTS.iter().enumerate() {
            e = e.rename(slot, &atom_col(*i, k));
        }
        for (k, t) in atom.terms().into_iter().enumerate() {
            let col = atom_col(*i, k);
            match t {
                Term::Const(c) => {
                    e = e.select_const(&col, &sym_to_cell(c));
                }
                Term::Var(v) => match first.get(&v) {
                    None => {
                        first.insert(v, col);
                    }
                    Some(prev) => equalities.push((prev.clone(), col)),
                },
            }
        }
        joined = Some(match joined {
            None => e,
            Some(prev) => prev.times(e),
        });
    }

    let mut e = match joined {
        Some(e) => e,
        // Fact: no positive atoms. Ground heads are handled by the caller;
        // represent the body as a single nullary "true" via a projection
        // of Quad onto nothing — but FO relations need ≥0 attrs; a
        // zero-attribute relation with one tuple is awkward, so facts are
        // special-cased in `rule_expr`.
        None => {
            return Ok((RelExpr::Rel(quad_rel()), first));
        }
    };
    for (a, b) in &equalities {
        e = e.select(a, b);
    }

    // Comparisons and negation.
    for lit in &rule.body {
        match lit {
            Literal::Pos(_) => {}
            Literal::Cmp { op, lhs, rhs } => {
                let col_of = |t: &Term| -> Result<ColOrConst> {
                    match t {
                        Term::Const(c) => Ok(ColOrConst::Const(*c)),
                        Term::Var(v) => first.get(v).map(|c| ColOrConst::Col(c.clone())).ok_or(
                            SlError::Unsafe {
                                var: *v,
                                rule: rule_idx,
                            },
                        ),
                    }
                };
                let (l, r) = (col_of(lhs)?, col_of(rhs)?);
                e = match op {
                    CmpOp::Eq => apply_eq(e, &l, &r),
                    CmpOp::Ne => {
                        let matched = apply_eq(e.clone(), &l, &r);
                        e.minus(matched)
                    }
                    CmpOp::Lt | CmpOp::Gt | CmpOp::Le | CmpOp::Ge => {
                        if !with_order {
                            return Err(SlError::Untranslatable(format!(
                                "order built-in {} needs the Ord relation; use                                  translate_with_order / run_translated",
                                op.text()
                            )));
                        }
                        // a < b  ⇔ (a, b) ∈ Ord;  a ≤ b  ⇔  a < b ∨ a = b,
                        // expressed as union of the two selections.
                        let (lo, hi, or_equal) = match op {
                            CmpOp::Lt => (&l, &r, false),
                            CmpOp::Gt => (&r, &l, false),
                            CmpOp::Le => (&l, &r, true),
                            CmpOp::Ge => (&r, &l, true),
                            _ => unreachable!(),
                        };
                        let strict = apply_ord(e.clone(), lo, hi, rule_idx)?;
                        if or_equal {
                            strict.union(apply_eq(e, &l, &r))
                        } else {
                            strict
                        }
                    }
                };
            }
            Literal::Neg(atom) => {
                // Anti-join: E \ π_{cols(E)}(σ_match(E × Quad')).
                let qi = rule.body.len() + 100; // column namespace for the probe
                let mut probe = RelExpr::Rel(quad_rel());
                for (k, slot) in SLOTS.iter().enumerate() {
                    probe = probe.rename(slot, &atom_col(qi, k));
                }
                let mut matched = e.clone().times(probe);
                // Variables unbound by the positive body are existential
                // within the negated atom; repeated occurrences inside the
                // atom still force equality between probe columns.
                let mut local: HashMap<Istr, String> = HashMap::new();
                for (k, t) in atom.terms().into_iter().enumerate() {
                    let col = atom_col(qi, k);
                    match t {
                        Term::Const(c) => matched = matched.select_const(&col, &sym_to_cell(c)),
                        Term::Var(v) => {
                            if let Some(bound) = first.get(&v) {
                                matched = matched.select(bound, &col);
                            } else if let Some(prev) = local.get(&v) {
                                matched = matched.select(prev, &col);
                            } else {
                                local.insert(v, col);
                            }
                        }
                    }
                }
                let keep: Vec<String> = all_cols(&pos_atoms);
                let keep_refs: Vec<&str> = keep.iter().map(String::as_str).collect();
                e = e.minus(matched.project(&keep_refs));
            }
        }
    }
    Ok((e, first))
}

enum ColOrConst {
    Col(String),
    Const(Symbol),
}

fn apply_eq(e: RelExpr, l: &ColOrConst, r: &ColOrConst) -> RelExpr {
    match (l, r) {
        (ColOrConst::Col(a), ColOrConst::Col(b)) => e.select(a, b),
        (ColOrConst::Col(a), ColOrConst::Const(c)) | (ColOrConst::Const(c), ColOrConst::Col(a)) => {
            e.select_const(a, &sym_to_cell(*c))
        }
        (ColOrConst::Const(a), ColOrConst::Const(b)) => {
            if a == b {
                e
            } else {
                e.clone().minus(e)
            }
        }
    }
}

/// Join against the strict-order relation `Ord(Lo, Hi)`: keep the rows of
/// `e` whose `lo`/`hi` sides stand in the order. Constant sides join too
/// (they are rows of `Ord` like any other).
fn apply_ord(e: RelExpr, lo: &ColOrConst, hi: &ColOrConst, rule_idx: usize) -> Result<RelExpr> {
    let _ = rule_idx;
    let probe = RelExpr::rel("Ord")
        .rename("Lo", "\u{1F}ordlo")
        .rename("Hi", "\u{1F}ordhi");
    let mut matched = e.clone().times(probe);
    matched = match lo {
        ColOrConst::Col(c) => matched.select(c, "\u{1F}ordlo"),
        ColOrConst::Const(k) => matched.select_const("\u{1F}ordlo", &sym_to_cell(*k)),
    };
    matched = match hi {
        ColOrConst::Col(c) => matched.select(c, "\u{1F}ordhi"),
        ColOrConst::Const(k) => matched.select_const("\u{1F}ordhi", &sym_to_cell(*k)),
    };
    // Project back to e's columns: everything except the probe columns.
    // e's columns are exactly the positive atoms' columns, which the
    // caller tracks; rather than thread them through, drop the probe
    // columns by name.
    Ok(matched.project_away(&["\u{1F}ordlo", "\u{1F}ordhi"]))
}

fn all_cols(pos_atoms: &[(usize, &Atom)]) -> Vec<String> {
    pos_atoms
        .iter()
        .flat_map(|(i, _)| (0..4).map(move |k| atom_col(*i, k)))
        .collect()
}

/// Translate one rule into an expression deriving its head quads (columns
/// `Rel, Tid, Attr, Val`), or `None` for ground facts handled separately.
fn rule_expr(rule: &Rule, rule_idx: usize, with_order: bool) -> Result<RelExpr> {
    let has_pos = rule.body.iter().any(|l| matches!(l, Literal::Pos(_)));
    if !has_pos {
        // Ground fact(s): a product of four constants per head atom.
        let mut acc: Option<RelExpr> = None;
        for h in &rule.head {
            let mut e: Option<RelExpr> = None;
            for (slot, t) in SLOTS.iter().zip(h.terms()) {
                let Term::Const(c) = t else {
                    return Err(SlError::Unsafe {
                        var: match t {
                            Term::Var(v) => v,
                            Term::Const(_) => unreachable!(),
                        },
                        rule: rule_idx,
                    });
                };
                let konst = RelExpr::Const {
                    attr: Symbol::name(slot),
                    value: c,
                };
                e = Some(match e {
                    None => konst,
                    Some(prev) => prev.times(konst),
                });
            }
            let e = e.expect("four slots");
            acc = Some(match acc {
                None => e,
                Some(prev) => prev.union(e),
            });
        }
        return Ok(acc.expect("at least one head atom"));
    }

    let (base, first) = body_expr(rule, rule_idx, with_order)?;
    // Project the body onto the distinct head variables, renamed to their
    // variable columns.
    let head_vars: Vec<Istr> = {
        let mut out = Vec::new();
        for h in &rule.head {
            for v in h.vars() {
                if !out.contains(&v) {
                    out.push(v);
                }
            }
        }
        out
    };
    let mut projected = base.clone();
    for &v in &head_vars {
        let col = first.get(&v).ok_or(SlError::Unsafe {
            var: v,
            rule: rule_idx,
        })?;
        projected = projected.rename(col, &var_col(v));
    }
    let var_cols: Vec<String> = head_vars.iter().map(|&v| var_col(v)).collect();
    let var_refs: Vec<&str> = var_cols.iter().map(String::as_str).collect();
    let projected = projected.project(&var_refs);

    // Build each head atom's quads from the projected variables.
    let mut acc: Option<RelExpr> = None;
    for h in &rule.head {
        let mut e = projected.clone();
        let mut used: HashMap<Istr, usize> = HashMap::new();
        for (slot, t) in SLOTS.iter().zip(h.terms()) {
            match t {
                Term::Const(c) => {
                    e = e.times(RelExpr::Const {
                        attr: Symbol::name(slot),
                        value: c,
                    });
                }
                Term::Var(v) => {
                    let n = used.entry(v).or_insert(0);
                    *n += 1;
                    if *n == 1 {
                        // First use: rename the variable column into the
                        // slot at the end (after all slots are placed).
                        continue;
                    }
                    // Re-use: duplicate the column with a self-join.
                    let dup = projected
                        .clone()
                        .project(&[&var_col(v)])
                        .rename(&var_col(v), slot);
                    e = e.times(dup).select(slot, &var_col(v));
                }
            }
        }
        // Rename first-use variables into their slots, then project into
        // (Rel, Tid, Attr, Val) order.
        let mut seen: Vec<Istr> = Vec::new();
        for (slot, t) in SLOTS.iter().zip(h.terms()) {
            if let Term::Var(v) = t {
                if !seen.contains(&v) {
                    seen.push(v);
                    e = e.rename(&var_col(v), slot);
                }
            }
        }
        let e = e.project(&SLOTS);
        acc = Some(match acc {
            None => e,
            Some(prev) => prev.union(e),
        });
    }
    Ok(acc.expect("at least one head atom"))
}

/// Translate a whole SchemaLog_d program into an `FO + while + new`
/// program over the relation `Quad(Rel, Tid, Attr, Val)`: strata run in
/// order, each iterating its rules naively to a fixpoint.
pub fn translate(program: &SlProgram) -> Result<FoProgram> {
    translate_inner(program, false)
}

/// Like [`translate`], additionally allowing order built-ins, which
/// compile to joins against the strict-order relation `Ord(Lo, Hi)` (see
/// [`order_relation`]). The resulting program expects `Ord` among its
/// input relations.
pub fn translate_with_order(program: &SlProgram) -> Result<FoProgram> {
    translate_inner(program, true)
}

fn translate_inner(program: &SlProgram, with_order: bool) -> Result<FoProgram> {
    check_safety(program)?;
    let strata = stratify(program)?;

    let mut fo = FoProgram::new();
    for s in 0..strata.count {
        let rules: Vec<(usize, &Rule)> = program
            .rules
            .iter()
            .enumerate()
            .filter(|(i, _)| strata.rule_stratum[*i] == s)
            .collect();
        if rules.is_empty() {
            continue;
        }
        let mut union: Option<RelExpr> = None;
        for (ri, rule) in &rules {
            let e = rule_expr(rule, *ri, with_order)?;
            union = Some(match union {
                None => e,
                Some(prev) => prev.union(e),
            });
        }
        let union = union.expect("non-empty stratum");
        let delta = format!("\u{1F}delta{s}");
        let derived = format!("\u{1F}derived{s}");
        fo = fo
            .assign(&derived, union.clone())
            .assign(&delta, RelExpr::rel(&derived).minus(RelExpr::rel("Quad")))
            .assign("Quad", RelExpr::rel("Quad").union(RelExpr::rel(&delta)))
            .while_nonempty(
                &delta,
                FoProgram::new()
                    .assign(&derived, union)
                    .assign(&delta, RelExpr::rel(&derived).minus(RelExpr::rel("Quad")))
                    .assign("Quad", RelExpr::rel("Quad").union(RelExpr::rel(&delta))),
            );
    }
    Ok(fo)
}

/// True if the program uses an order built-in (`<`, `≤`, `>`, `≥`).
pub fn uses_order(program: &SlProgram) -> bool {
    program.rules.iter().any(|r| {
        r.body.iter().any(|l| {
            matches!(
                l,
                Literal::Cmp {
                    op: CmpOp::Lt | CmpOp::Le | CmpOp::Gt | CmpOp::Ge,
                    ..
                }
            )
        })
    })
}

/// Materialize the strict order over the active domain of `input` as the
/// relation `Ord(Lo, Hi)` — the explicit-order input that makes order
/// built-ins first-order (and hence TA-) expressible. Uses the same
/// numeric-aware comparison as the native evaluator's built-ins.
pub fn order_relation(input: &QuadDb) -> tabular_relational::relation::Relation {
    use tabular_relational::relation::Relation;
    let mut domain: Vec<Symbol> = Vec::new();
    for q in input.iter() {
        for &s in q {
            if !domain.contains(&s) {
                domain.push(s);
            }
        }
    }
    let mut ord = Relation::empty(
        Symbol::name("Ord"),
        vec![Symbol::name("Lo"), Symbol::name("Hi")],
    )
    .expect("static attrs");
    for &a in &domain {
        for &b in &domain {
            if CmpOp::Lt.eval(a, b) {
                ord.insert(vec![a, b]).expect("arity 2");
            }
        }
    }
    ord
}

/// Run a SchemaLog_d program *through the tabular algebra*: the quad view
/// becomes the `Quad` relation, the program translates to `FO + while`
/// ([`translate`] — or [`translate_with_order`] with the materialized
/// `Ord` relation, when the program uses order built-ins) and then to TA
/// (Theorem 4.1), the TA interpreter runs it, and the final quads are read
/// back.
pub fn run_translated(
    program: &SlProgram,
    input: &QuadDb,
    limits: &tabular_algebra::EvalLimits,
) -> Result<QuadDb> {
    Ok(run_translated_traced(program, input, limits)?.0)
}

/// Like [`run_translated`], additionally returning the TA evaluator's
/// statistics and structured trace for the translated program — the
/// observability path through the whole SchemaLog_d → FO → TA stack.
pub fn run_translated_traced(
    program: &SlProgram,
    input: &QuadDb,
    limits: &tabular_algebra::EvalLimits,
) -> Result<(QuadDb, tabular_algebra::EvalStats, tabular_algebra::Trace)> {
    let ordered = uses_order(program);
    let fo = if ordered {
        translate_with_order(program)?
    } else {
        translate(program)?
    };
    let mut relations = vec![input.to_relation(quad_rel())];
    if ordered {
        relations.push(order_relation(input));
    }
    let db = RelDatabase::from_relations(relations);
    let (out, stats, trace) =
        tabular_relational::compile::run_compiled_traced(&fo, &db, &["Quad"], limits)?;
    let quad =
        out.get(quad_rel())
            .ok_or(SlError::Rel(tabular_relational::RelError::MissingRelation(
                quad_rel(),
            )))?;
    Ok((QuadDb::from_relation(quad), stats, trace))
}

/// Like [`run_translated_traced`], but governed by a
/// [`tabular_algebra::Budget`]: the underlying TA run honors the
/// budget's deadline, run-cell allowance, and cancellation token, so a
/// diverging or oversized SchemaLog_d program trips
/// [`tabular_algebra::AlgebraError::BudgetExceeded`] with the partial
/// stats and trace of the translated run.
pub fn run_translated_governed(
    program: &SlProgram,
    input: &QuadDb,
    budget: &tabular_algebra::Budget,
) -> Result<(QuadDb, tabular_algebra::EvalStats, tabular_algebra::Trace)> {
    let ordered = uses_order(program);
    let fo = if ordered {
        translate_with_order(program)?
    } else {
        translate(program)?
    };
    let mut relations = vec![input.to_relation(quad_rel())];
    if ordered {
        relations.push(order_relation(input));
    }
    let db = RelDatabase::from_relations(relations);
    let (out, stats, trace) =
        tabular_relational::compile::run_compiled_governed(&fo, &db, &["Quad"], budget)?;
    let quad =
        out.get(quad_rel())
            .ok_or(SlError::Rel(tabular_relational::RelError::MissingRelation(
                quad_rel(),
            )))?;
    Ok((QuadDb::from_relation(quad), stats, trace))
}

/// Like [`run_translated_governed`], but the compiled TA program goes
/// through the cost-based planner (`tabular_algebra::plan`) before
/// evaluation; the planner's decision report for the full
/// SchemaLog_d → FO → TA stack is returned alongside the run artifacts.
pub fn run_translated_planned(
    program: &SlProgram,
    input: &QuadDb,
    budget: &tabular_algebra::Budget,
) -> Result<(
    QuadDb,
    tabular_algebra::EvalStats,
    tabular_algebra::Trace,
    tabular_algebra::PlanReport,
)> {
    let ordered = uses_order(program);
    let fo = if ordered {
        translate_with_order(program)?
    } else {
        translate(program)?
    };
    let mut relations = vec![input.to_relation(quad_rel())];
    if ordered {
        relations.push(order_relation(input));
    }
    let db = RelDatabase::from_relations(relations);
    let (out, stats, trace, report) =
        tabular_relational::compile::run_compiled_planned(&fo, &db, &["Quad"], budget)?;
    let quad =
        out.get(quad_rel())
            .ok_or(SlError::Rel(tabular_relational::RelError::MissingRelation(
                quad_rel(),
            )))?;
    Ok((QuadDb::from_relation(quad), stats, trace, report))
}

/// Run the same translation but stop at the FO layer (reference point for
/// the TA path; useful in benches to separate translation cost from TA
/// interpretation cost).
pub fn run_fo(program: &SlProgram, input: &QuadDb, max_iters: usize) -> Result<QuadDb> {
    let ordered = uses_order(program);
    let fo = if ordered {
        translate_with_order(program)?
    } else {
        translate(program)?
    };
    let mut relations = vec![input.to_relation(quad_rel())];
    if ordered {
        relations.push(order_relation(input));
    }
    let db = RelDatabase::from_relations(relations);
    let out = fo.run(&db, max_iters)?;
    let quad =
        out.get(quad_rel())
            .ok_or(SlError::Rel(tabular_relational::RelError::MissingRelation(
                quad_rel(),
            )))?;
    Ok(QuadDb::from_relation(quad))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{eval, SlLimits, Strategy};
    use crate::parser::parse;
    use tabular_algebra::EvalLimits;
    use tabular_relational::relation::Relation;

    fn sales_quads() -> QuadDb {
        QuadDb::from_relations(&RelDatabase::from_relations([Relation::new(
            "sales",
            &["part", "region"],
            &[&["nuts", "east"], &["bolts", "east"], &["nuts", "west"]],
        )]))
    }

    fn assert_paths_agree(src: &str, input: &QuadDb) {
        let p = parse(src).unwrap();
        let native = eval(&p, input, Strategy::SemiNaive, &SlLimits::default()).unwrap();
        let via_fo = run_fo(&p, input, 10_000).unwrap();
        assert_eq!(native.len(), via_fo.len(), "native vs FO sizes differ");
        for q in native.iter() {
            assert!(via_fo.contains(q), "FO path missing {q:?}");
        }
        let via_ta = run_translated(&p, input, &EvalLimits::default()).unwrap();
        assert_eq!(native.len(), via_ta.len(), "native vs TA sizes differ");
        for q in native.iter() {
            assert!(via_ta.contains(q), "TA path missing {q:?}");
        }
    }

    #[test]
    fn traced_translation_reports_ta_spans() {
        let p = parse("parts[T : part -> P] :- sales[T : part -> P].").unwrap();
        let traced = EvalLimits {
            trace: tabular_algebra::TraceLevel::Spans,
            ..EvalLimits::default()
        };
        let (out, stats, trace) = run_translated_traced(&p, &sales_quads(), &traced).unwrap();
        let plain = run_translated(&p, &sales_quads(), &EvalLimits::default()).unwrap();
        assert_eq!(out.len(), plain.len(), "tracing must not change results");
        assert!(!trace.is_empty(), "translated TA statements produce spans");
        assert_eq!(trace.per_op_micros(), stats.op_micros);
        assert!(stats.while_iterations > 0, "the fixpoint loop was traced");
    }

    #[test]
    fn planned_translation_agrees_and_reports_rewrites() {
        let p = parse("pr[T : pair -> P] :- sales[T : part -> P], sales[T : region -> v:east].")
            .unwrap();
        let input = sales_quads();
        let budget = tabular_algebra::Budget::from_limits(&EvalLimits::default());
        let (out, stats, _, report) = run_translated_planned(&p, &input, &budget).unwrap();
        let plain = run_translated(&p, &input, &EvalLimits::default()).unwrap();
        assert_eq!(out.len(), plain.len(), "planning must not change results");
        for q in plain.iter() {
            assert!(out.contains(q), "planned path missing {q:?}");
        }
        // The join rule compiles to scratch PRODUCT + SELECT shapes the
        // planner rewrites, and the stats counters mirror the report.
        assert!(report.rules_applied() >= 1, "translated joins rewrite");
        assert_eq!(stats.plan_rules_applied, report.rules_applied());
    }

    #[test]
    fn translates_simple_projection() {
        assert_paths_agree(
            "parts[T : part -> P] :- sales[T : part -> P].",
            &sales_quads(),
        );
    }

    #[test]
    fn translates_joins_on_shared_tids() {
        assert_paths_agree(
            "pr[T : pair -> P] :- sales[T : part -> P], sales[T : region -> v:east].",
            &sales_quads(),
        );
    }

    #[test]
    fn translates_variable_attributes() {
        // Metadata as data: copy every quad under a new relation.
        assert_paths_agree("flat[T : A -> V] :- sales[T : A -> V].", &sales_quads());
    }

    #[test]
    fn translates_dynamic_heads() {
        // Relations named by data — the SchemaLog SPLIT.
        assert_paths_agree(
            "P[T : region -> R] :- sales[T : part -> P], sales[T : region -> R].",
            &sales_quads(),
        );
    }

    #[test]
    fn translates_negation() {
        assert_paths_agree(
            "
            eastern[T : part -> P] :- sales[T : part -> P], sales[T : region -> v:east].
            lonely[T : part -> P] :- sales[T : part -> P], not eastern[T : part -> P].
            ",
            &sales_quads(),
        );
    }

    #[test]
    fn translates_equality_builtins() {
        assert_paths_agree(
            "same[T : part -> P] :- sales[T : part -> P], sales[T : region -> R], P != R.",
            &sales_quads(),
        );
    }

    #[test]
    fn translates_facts() {
        assert_paths_agree(
            "
            marker[v:t0 : kind -> special].
            out[T : part -> P] :- sales[T : part -> P], marker[U : kind -> special].
            ",
            &sales_quads(),
        );
    }

    #[test]
    fn translates_recursion() {
        let edges = QuadDb::from_relations(&RelDatabase::from_relations([Relation::new(
            "edge",
            &["from", "to"],
            &[&["a", "b"], &["b", "c"]],
        )]));
        assert_paths_agree(
            "
            tc[T : from -> X, to -> Y] :- edge[T : from -> X, to -> Y].
            tc[T : from -> X, to -> Z] :- tc[T : from -> X, to -> Y],
                                          edge[U : from -> Y, to -> Z].
            ",
            &edges,
        );
    }

    #[test]
    fn translates_repeated_head_variables() {
        // The same variable in two head slots exercises the self-join
        // duplication.
        assert_paths_agree("loopy[T : P -> P] :- sales[T : part -> P].", &sales_quads());
    }

    #[test]
    fn translates_existential_negation() {
        // The tid of the negated atom is unbound: ¬∃U watchlist[U: …].
        let mut q = sales_quads();
        let extra = QuadDb::from_relations(&RelDatabase::from_relations([Relation::new(
            "watchlist",
            &["part"],
            &[&["bolts"]],
        )]));
        for quad in extra.iter() {
            q.insert(*quad);
        }
        assert_paths_agree(
            "clear[T : part -> P] :- sales[T : part -> P], not watchlist[U : part -> P].",
            &q,
        );
    }

    #[test]
    fn order_builtins_need_the_order_relation() {
        let p = parse("ans[T : a -> S] :- sales[T : part -> S], S >= v:m.").unwrap();
        assert!(matches!(translate(&p), Err(SlError::Untranslatable(_))));
        assert!(translate_with_order(&p).is_ok());
    }

    #[test]
    fn translates_order_builtins_with_the_order_relation() {
        // Numeric sales data, so the order built-in has real work to do.
        let q = QuadDb::from_relations(&RelDatabase::from_relations([Relation::new(
            "sales",
            &["part", "sold"],
            &[
                &["nuts", "50"],
                &["bolts", "70"],
                &["screws", "9"],
                &["washers", "70"],
            ],
        )]));
        assert_paths_agree(
            "big[T : part -> P] :- sales[T : part -> P], sales[T : sold -> S], S >= 50.",
            &q,
        );
        assert_paths_agree(
            "small[T : part -> P] :- sales[T : part -> P], sales[T : sold -> S], S < 50.",
            &q,
        );
        // Two-sided comparison across tuples.
        assert_paths_agree(
            "beats[T : part -> P] :- sales[T : part -> P], sales[T : sold -> S],
                                     sales[U : sold -> S2], S > S2.",
            &q,
        );
    }

    #[test]
    fn order_relation_is_a_strict_order() {
        let q = sales_quads();
        let ord = order_relation(&q);
        // Irreflexive and antisymmetric.
        for t in ord.tuples() {
            assert_ne!(t[0], t[1]);
            assert!(!ord.contains(&[t[1], t[0]]));
        }
    }

    #[test]
    fn unsafe_heads_are_rejected_statically() {
        let p = parse("ans[T : a -> X] :- sales[T : part -> P].").unwrap();
        assert!(matches!(translate(&p), Err(SlError::Unsafe { .. })));
    }
}
