//! Stratification of SchemaLog_d programs with negation.
//!
//! Predicates are the *constant* relation terms; a variable relation term
//! in a positive body atom depends on every predicate, and a variable
//! *head* defines every predicate. Negated atoms must name their relation
//! with a constant ([`SlError::DynamicNegation`]) — otherwise strata are
//! not well defined.

use crate::ast::{Literal, SlProgram, Term};
use crate::error::{Result, SlError};
use tabular_core::Symbol;

/// A node of the dependency graph: a named predicate or the wildcard
/// standing for "any relation" (variable relation terms).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Node {
    Named(Symbol),
    Any,
}

/// Result of stratification: for each rule, its stratum, plus the number
/// of strata.
#[derive(Clone, Debug)]
pub struct Strata {
    /// `stratum[i]` is the stratum of rule `i`.
    pub rule_stratum: Vec<usize>,
    /// Total number of strata.
    pub count: usize,
}

/// Compute strata. Errors with [`SlError::DynamicNegation`] when a negated
/// atom has a variable relation term, and [`SlError::NotStratified`] when a
/// predicate depends negatively on itself (possibly through the
/// wildcard).
pub fn stratify(program: &SlProgram) -> Result<Strata> {
    // Collect nodes.
    let mut nodes: Vec<Node> = vec![Node::Any];
    let add = |nodes: &mut Vec<Node>, t: Term| -> Node {
        let n = match t {
            Term::Const(s) => Node::Named(s),
            Term::Var(_) => Node::Any,
        };
        if !nodes.contains(&n) {
            nodes.push(n);
        }
        n
    };
    // Edges: (body node, head node, negated).
    let mut edges: Vec<(Node, Node, bool)> = Vec::new();
    for (ri, rule) in program.rules.iter().enumerate() {
        let heads: Vec<Node> = rule.head.iter().map(|h| add(&mut nodes, h.rel)).collect();
        for lit in &rule.body {
            let (node, neg) = match lit {
                Literal::Pos(a) => (add(&mut nodes, a.rel), false),
                Literal::Neg(a) => {
                    if a.rel.is_var() {
                        return Err(SlError::DynamicNegation { rule: ri });
                    }
                    (add(&mut nodes, a.rel), true)
                }
                Literal::Cmp { .. } => continue,
            };
            for &h in &heads {
                edges.push((node, h, neg));
            }
        }
    }
    // Wire up the wildcard only as far as the program actually uses it:
    // a variable relation term in a positive body reads *every* predicate
    // (named → Any), and a variable head defines every predicate
    // (Any → named). Unconditional aliasing would collapse all predicates
    // into one SCC and spuriously reject ordinary stratified programs.
    let reads_any = program.rules.iter().any(|r| {
        r.body
            .iter()
            .any(|l| matches!(l, Literal::Pos(a) if a.rel.is_var()))
    });
    let defines_any = program.has_dynamic_heads();
    let named: Vec<Node> = nodes
        .iter()
        .copied()
        .filter(|n| matches!(n, Node::Named(_)))
        .collect();
    for n in &named {
        if reads_any {
            edges.push((*n, Node::Any, false));
        }
        if defines_any {
            edges.push((Node::Any, *n, false));
        }
    }

    // Relaxation: stratum[h] ≥ stratum[b] (+1 if negated).
    let idx = |n: Node, nodes: &[Node]| nodes.iter().position(|&x| x == n).expect("known node");
    let mut stratum = vec![0usize; nodes.len()];
    let bound = nodes.len() + 1;
    loop {
        let mut changed = false;
        for &(b, h, neg) in &edges {
            let need = stratum[idx(b, &nodes)] + usize::from(neg);
            let hi = idx(h, &nodes);
            if stratum[hi] < need {
                stratum[hi] = need;
                changed = true;
                if stratum[hi] > bound {
                    return Err(SlError::NotStratified);
                }
            }
        }
        if !changed {
            break;
        }
    }

    let rule_stratum: Vec<usize> = program
        .rules
        .iter()
        .map(|r| {
            r.head
                .iter()
                .map(|h| {
                    let n = match h.rel {
                        Term::Const(s) => Node::Named(s),
                        Term::Var(_) => Node::Any,
                    };
                    stratum[idx(n, &nodes)]
                })
                .max()
                .unwrap_or(0)
        })
        .collect();
    let count = rule_stratum.iter().copied().max().unwrap_or(0) + 1;
    Ok(Strata {
        rule_stratum,
        count,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{Atom, Rule};

    fn atom(rel: Term) -> Atom {
        Atom {
            rel,
            tid: Term::var("T"),
            attr: Term::name("a"),
            value: Term::var("X"),
        }
    }

    fn rule(head: Term, body: Vec<Literal>) -> Rule {
        Rule {
            head: vec![atom(head)],
            body,
        }
    }

    #[test]
    fn positive_programs_are_single_stratum() {
        let p = SlProgram {
            rules: vec![
                rule(Term::name("q"), vec![Literal::Pos(atom(Term::name("e")))]),
                rule(Term::name("q"), vec![Literal::Pos(atom(Term::name("q")))]),
            ],
        };
        let s = stratify(&p).unwrap();
        assert_eq!(s.count, 1);
    }

    #[test]
    fn negation_pushes_to_a_later_stratum() {
        let p = SlProgram {
            rules: vec![
                rule(Term::name("q"), vec![Literal::Pos(atom(Term::name("e")))]),
                rule(
                    Term::name("r"),
                    vec![
                        Literal::Pos(atom(Term::name("e"))),
                        Literal::Neg(atom(Term::name("q"))),
                    ],
                ),
            ],
        };
        let s = stratify(&p).unwrap();
        assert_eq!(s.count, 2);
        assert_eq!(s.rule_stratum, vec![0, 1]);
    }

    #[test]
    fn negative_self_dependency_is_rejected() {
        let p = SlProgram {
            rules: vec![rule(
                Term::name("q"),
                vec![Literal::Neg(atom(Term::name("q")))],
            )],
        };
        assert!(matches!(stratify(&p), Err(SlError::NotStratified)));
    }

    #[test]
    fn negation_through_the_wildcard_is_rejected() {
        // q :- not r.   X[..] :- q[..]  — the variable head may redefine r.
        let p = SlProgram {
            rules: vec![
                rule(Term::name("q"), vec![Literal::Neg(atom(Term::name("r")))]),
                rule(Term::var("X"), vec![Literal::Pos(atom(Term::name("q")))]),
            ],
        };
        assert!(matches!(stratify(&p), Err(SlError::NotStratified)));
    }

    #[test]
    fn dynamic_negation_is_rejected() {
        let p = SlProgram {
            rules: vec![rule(
                Term::name("q"),
                vec![Literal::Neg(atom(Term::var("R")))],
            )],
        };
        assert!(matches!(
            stratify(&p),
            Err(SlError::DynamicNegation { rule: 0 })
        ));
    }
}
