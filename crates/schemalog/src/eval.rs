//! Bottom-up evaluation of SchemaLog_d programs over the quadruple view:
//! stratified, with naive and semi-naive fixpoint strategies (the
//! semi-naive/naive split is an ablation axis in the benchmark harness).

use crate::ast::{Atom, Literal, Rule, SlProgram, Term};
use crate::error::{Result, SlError};
use crate::quads::{Quad, QuadDb};
use crate::stratify::stratify;
use std::collections::HashMap;
use tabular_core::{Istr, Symbol};

/// Fixpoint strategy.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Strategy {
    /// Re-derive from the full database every round.
    Naive,
    /// Restrict one positive literal per round to the newly-derived quads.
    SemiNaive,
}

/// Evaluation limits.
#[derive(Clone, Copy, Debug)]
pub struct SlLimits {
    /// Maximum fixpoint rounds per stratum.
    pub max_rounds: usize,
    /// Maximum number of derived quads.
    pub max_quads: usize,
}

impl Default for SlLimits {
    fn default() -> Self {
        SlLimits {
            max_rounds: 100_000,
            max_quads: 10_000_000,
        }
    }
}

type Bindings = HashMap<Istr, Symbol>;

/// Bind the terms of `atom` against `quad` *in place*, recording which
/// variables this call introduced so they can be unwound. Returns `false`
/// (with nothing to unwind beyond `introduced`) on mismatch. The in-place
/// bind/undo discipline avoids cloning the environment per candidate quad
/// — the dominant cost of the naive nested-loop join (EXPERIMENTS.md §3).
fn bind_atom(atom: &Atom, quad: &Quad, b: &mut Bindings, introduced: &mut Vec<Istr>) -> bool {
    for (t, &s) in atom.terms().into_iter().zip(quad) {
        match t {
            Term::Const(c) => {
                if c != s {
                    return false;
                }
            }
            Term::Var(v) => match b.get(&v) {
                Some(&bound) => {
                    if bound != s {
                        return false;
                    }
                }
                None => {
                    b.insert(v, s);
                    introduced.push(v);
                }
            },
        }
    }
    true
}

fn unwind(b: &mut Bindings, introduced: &[Istr]) {
    for v in introduced {
        b.remove(v);
    }
}

/// Pure match test (no binding mutation survives): used by negation.
fn matches_atom(atom: &Atom, quad: &Quad, b: &mut Bindings) -> bool {
    let mut introduced = Vec::new();
    let ok = bind_atom(atom, quad, b, &mut introduced);
    unwind(b, &introduced);
    ok
}

fn resolve(t: Term, b: &Bindings) -> Option<Symbol> {
    match t {
        Term::Const(c) => Some(c),
        Term::Var(v) => b.get(&v).copied(),
    }
}

/// Ground atoms of `atom` against `db` (or `delta` at the designated
/// literal position for semi-naive), extending bindings; calls `emit` for
/// each complete body match.
#[allow(clippy::too_many_arguments)]
fn join(
    rule: &Rule,
    rule_idx: usize,
    pos: usize,
    db: &QuadDb,
    delta: Option<(&QuadDb, usize)>,
    b: &mut Bindings,
    emit: &mut dyn FnMut(&Bindings) -> Result<()>,
) -> Result<()> {
    if pos == rule.body.len() {
        emit(b)?;
        return Ok(());
    }
    match &rule.body[pos] {
        Literal::Pos(atom) => {
            let source = match delta {
                Some((d, at)) if at == pos => d,
                _ => db,
            };
            // Index selection: (rel, tid) when both are bound — the hot
            // path, since the first atom of a rule binds the tid and every
            // further atom over the same tuple hits the pair index — then
            // rel alone, then a full scan.
            let rel = resolve(atom.rel, b);
            let tid = resolve(atom.tid, b);
            let mut introduced = Vec::new();
            let mut step = |q: &Quad,
                            b: &mut Bindings,
                            emit: &mut dyn FnMut(&Bindings) -> Result<()>|
             -> Result<()> {
                introduced.clear();
                if bind_atom(atom, q, b, &mut introduced) {
                    join(rule, rule_idx, pos + 1, db, delta, b, emit)?;
                }
                unwind(b, &introduced);
                Ok(())
            };
            match (rel, tid) {
                (Some(r), Some(t)) => {
                    for q in source.iter_rel_tid(r, t) {
                        step(q, b, emit)?;
                    }
                }
                (Some(r), None) => {
                    for q in source.iter_rel(r) {
                        step(q, b, emit)?;
                    }
                }
                _ => {
                    for q in source.iter() {
                        step(q, b, emit)?;
                    }
                }
            }
            Ok(())
        }
        Literal::Neg(atom) => {
            // Negation as non-existence: variables of the atom not bound
            // by earlier positive literals are existentially quantified
            // *under* the negation (¬∃U …), which is the standard safe
            // reading. Fully-bound atoms degenerate to a set lookup.
            let rel = resolve(atom.rel, b);
            let exists = match rel {
                Some(r) => db.iter_rel(r).any(|q| matches_atom(atom, q, b)),
                None => db.iter().any(|q| matches_atom(atom, q, b)),
            };
            if !exists {
                join(rule, rule_idx, pos + 1, db, delta, b, emit)?;
            }
            Ok(())
        }
        Literal::Cmp { op, lhs, rhs } => {
            let l = resolve(*lhs, b).ok_or_else(|| unsafe_var(*lhs, rule_idx))?;
            let r = resolve(*rhs, b).ok_or_else(|| unsafe_var(*rhs, rule_idx))?;
            if op.eval(l, r) {
                join(rule, rule_idx, pos + 1, db, delta, b, emit)?;
            }
            Ok(())
        }
    }
}

fn unsafe_var(t: Term, rule: usize) -> SlError {
    match t {
        Term::Var(v) => SlError::Unsafe { var: v, rule },
        Term::Const(_) => unreachable!("constants always resolve"),
    }
}

fn head_quads(rule: &Rule, rule_idx: usize, b: &Bindings, out: &mut Vec<Quad>) -> Result<()> {
    for h in &rule.head {
        let mut q = [Symbol::Null; 4];
        for (slot, t) in q.iter_mut().zip(h.terms()) {
            *slot = resolve(t, b).ok_or_else(|| unsafe_var(t, rule_idx))?;
        }
        out.push(q);
    }
    Ok(())
}

/// Reorder a rule body so that positive atoms come first (stable),
/// followed by comparisons and negations (stable). Negation and built-ins
/// thereby see every positive binding regardless of where the programmer
/// wrote them — the standard safe-datalog reading, and the one the
/// Theorem 4.5 translation implements.
fn normalize(rule: &Rule) -> Rule {
    let mut body: Vec<Literal> = rule
        .body
        .iter()
        .filter(|l| matches!(l, Literal::Pos(_)))
        .cloned()
        .collect();
    body.extend(
        rule.body
            .iter()
            .filter(|l| !matches!(l, Literal::Pos(_)))
            .cloned(),
    );
    Rule {
        head: rule.head.clone(),
        body,
    }
}

/// Evaluate a program over the given quad database, returning the final
/// database (input quads plus everything derived).
pub fn eval(
    program: &SlProgram,
    input: &QuadDb,
    strategy: Strategy,
    limits: &SlLimits,
) -> Result<QuadDb> {
    let strata = stratify(program)?;
    let mut db = input.clone();

    let normalized: Vec<Rule> = program.rules.iter().map(normalize).collect();
    for s in 0..strata.count {
        let rules: Vec<(usize, &Rule)> = normalized
            .iter()
            .enumerate()
            .filter(|(i, _)| strata.rule_stratum[*i] == s)
            .collect();
        if rules.is_empty() {
            continue;
        }

        // Round 0: evaluate every rule against the full database.
        let mut delta = QuadDb::new();
        for &(ri, rule) in &rules {
            let mut derived = Vec::new();
            join(rule, ri, 0, &db, None, &mut Bindings::new(), &mut |b| {
                head_quads(rule, ri, b, &mut derived)
            })?;
            for q in derived {
                if !db.contains(&q) {
                    delta.insert(q);
                }
            }
        }
        for q in delta.iter() {
            db.insert(*q);
        }

        let mut rounds = 0usize;
        while !delta.is_empty() {
            rounds += 1;
            if rounds > limits.max_rounds {
                return Err(SlError::FixpointLimit(limits.max_rounds));
            }
            if db.len() > limits.max_quads {
                return Err(SlError::FixpointLimit(limits.max_rounds));
            }
            let mut next = QuadDb::new();
            for &(ri, rule) in &rules {
                let mut derived = Vec::new();
                match strategy {
                    Strategy::Naive => {
                        join(rule, ri, 0, &db, None, &mut Bindings::new(), &mut |b| {
                            head_quads(rule, ri, b, &mut derived)
                        })?;
                    }
                    Strategy::SemiNaive => {
                        // One pass per positive literal, with that literal
                        // drawing from the delta.
                        for (pos, lit) in rule.body.iter().enumerate() {
                            if !matches!(lit, Literal::Pos(_)) {
                                continue;
                            }
                            join(
                                rule,
                                ri,
                                0,
                                &db,
                                Some((&delta, pos)),
                                &mut Bindings::new(),
                                &mut |b| head_quads(rule, ri, b, &mut derived),
                            )?;
                        }
                    }
                }
                for q in derived {
                    if !db.contains(&q) {
                        next.insert(q);
                    }
                }
            }
            for q in next.iter() {
                db.insert(*q);
            }
            delta = next;
        }
    }
    Ok(db)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use tabular_relational::relation::{RelDatabase, Relation};

    fn sales_quads() -> QuadDb {
        QuadDb::from_relations(&RelDatabase::from_relations([Relation::new(
            "sales",
            &["part", "region", "sold"],
            &[
                &["nuts", "east", "50"],
                &["nuts", "west", "60"],
                &["bolts", "east", "70"],
                &["screws", "north", "40"],
            ],
        )]))
    }

    fn run(src: &str, input: &QuadDb, strategy: Strategy) -> QuadDb {
        let p = parse(src).unwrap();
        eval(&p, input, strategy, &SlLimits::default()).unwrap()
    }

    #[test]
    fn simple_selection_rule() {
        let src = "big[T : part -> P] :- sales[T : part -> P], sales[T : sold -> S], S >= 60.";
        let out = run(src, &sales_quads(), Strategy::SemiNaive);
        let rels = out.to_relations(&[Symbol::name("big")]);
        let big = rels.get_str("big").unwrap();
        assert_eq!(big.len(), 2); // nuts(60), bolts(70)
    }

    #[test]
    fn naive_and_seminaive_agree() {
        let src = "
            edge[T : from -> X, to -> Y] :- sales[T : part -> X], sales[T : region -> Y].
            reach[T : from -> X, to -> Y] :- edge[T : from -> X, to -> Y].
        ";
        let q = sales_quads();
        let a = run(src, &q, Strategy::Naive);
        let b = run(src, &q, Strategy::SemiNaive);
        assert_eq!(a.len(), b.len());
        for quad in a.iter() {
            assert!(b.contains(quad));
        }
    }

    #[test]
    fn restructuring_with_variable_attributes() {
        // Swap every attribute's name with its value position: classic
        // SchemaLog data/metadata flipping.
        let src = "flat[T : A -> V] :- sales[T : A -> V].";
        let out = run(src, &sales_quads(), Strategy::SemiNaive);
        assert_eq!(
            out.iter_rel(Symbol::name("flat")).count(),
            out.iter_rel(Symbol::name("sales")).count()
        );
    }

    #[test]
    fn dynamic_head_creates_relations_named_by_data() {
        // One output relation per part — the SchemaLog counterpart of the
        // paper's SPLIT (SalesInfo4).
        let src = "P[T : region -> R, sold -> S] :-
                     sales[T : part -> P], sales[T : region -> R], sales[T : sold -> S].";
        let out = run(src, &sales_quads(), Strategy::SemiNaive);
        // Relations named nuts, bolts, screws (values!) now exist.
        assert_eq!(out.iter_rel(Symbol::value("nuts")).count(), 4); // 2 tuples × 2 attrs
        assert_eq!(out.iter_rel(Symbol::value("bolts")).count(), 2);
        assert_eq!(out.iter_rel(Symbol::value("screws")).count(), 2);
    }

    #[test]
    fn negation_is_stratified() {
        let src = "
            eastern[T : part -> P] :- sales[T : part -> P], sales[T : region -> v:east].
            other[T : part -> P] :- sales[T : part -> P], not eastern[T : part -> P].
        ";
        let out = run(src, &sales_quads(), Strategy::SemiNaive);
        let rels = out.to_relations(&[Symbol::name("eastern"), Symbol::name("other")]);
        assert_eq!(rels.get_str("eastern").unwrap().len(), 2); // nuts, bolts
        assert_eq!(rels.get_str("other").unwrap().len(), 2); // nuts(west), screws
    }

    #[test]
    fn recursion_reaches_fixpoint() {
        // Transitive closure over an edge relation.
        let edges = QuadDb::from_relations(&RelDatabase::from_relations([Relation::new(
            "edge",
            &["from", "to"],
            &[&["a", "b"], &["b", "c"], &["c", "d"]],
        )]));
        let src = "
            tc[T : from -> X, to -> Y] :- edge[T : from -> X, to -> Y].
            tc[T : from -> X, to -> Z] :- tc[T : from -> X, to -> Y],
                                          edge[T2 : from -> Y, to -> Z].
        ";
        let out = run(src, &edges, Strategy::SemiNaive);
        let naive = run(src, &edges, Strategy::Naive);
        assert_eq!(out.len(), naive.len());
        // Note: tids of derived tc facts are inherited from the first body
        // atom, so distinct paths from one source tuple share a tid and
        // overwrite per attribute; count quads rather than tuples.
        assert!(out.iter_rel(Symbol::name("tc")).count() >= 6);
    }

    #[test]
    fn unsafe_rules_are_reported() {
        let src = "ans[T : a -> X] :- sales[T : part -> P], X > P.";
        let p = parse(src).unwrap();
        assert!(matches!(
            eval(
                &p,
                &sales_quads(),
                Strategy::SemiNaive,
                &SlLimits::default()
            ),
            Err(SlError::Unsafe { .. })
        ));
    }

    #[test]
    fn fixpoint_limit_guards() {
        let edges = QuadDb::from_relations(&RelDatabase::from_relations([Relation::new(
            "edge",
            &["from", "to"],
            &[&["a", "b"], &["b", "a"]],
        )]));
        // A rule that keeps deriving along the cycle terminates anyway
        // (set semantics); verify the limit machinery with max_rounds = 0.
        let src = "
            tc[T : from -> X, to -> Y] :- edge[T : from -> X, to -> Y].
            tc[T : from -> X, to -> Z] :- tc[T : from -> X, to -> Y],
                                          edge[U : from -> Y, to -> Z].
        ";
        let p = parse(src).unwrap();
        let tight = SlLimits {
            max_rounds: 0,
            max_quads: 10,
        };
        assert!(matches!(
            eval(&p, &edges, Strategy::SemiNaive, &tight),
            Err(SlError::FixpointLimit(_))
        ));
    }
}
