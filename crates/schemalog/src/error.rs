//! Errors for SchemaLog parsing, evaluation, and translation.

use tabular_core::Istr;

/// SchemaLog errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SlError {
    /// Parse error.
    Parse {
        /// Byte offset.
        at: usize,
        /// Message.
        msg: String,
    },
    /// A rule is unsafe: a head / negated / built-in variable is not bound
    /// by a positive body literal.
    Unsafe {
        /// The unbound variable.
        var: Istr,
        /// Rule index in the program.
        rule: usize,
    },
    /// A negated atom uses a variable relation term, so strata cannot be
    /// assigned.
    DynamicNegation {
        /// Rule index.
        rule: usize,
    },
    /// The program's negation is not stratified (a predicate depends
    /// negatively on itself).
    NotStratified,
    /// The iteration bound was exceeded.
    FixpointLimit(usize),
    /// The translation to tabular algebra does not cover this feature.
    Untranslatable(String),
    /// Error from the relational layer.
    Rel(tabular_relational::RelError),
    /// Error from the tabular algebra layer.
    Tabular(tabular_algebra::AlgebraError),
}

impl std::fmt::Display for SlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SlError::Parse { at, msg } => write!(f, "parse error at byte {at}: {msg}"),
            SlError::Unsafe { var, rule } => {
                write!(f, "rule {rule} is unsafe: variable {var} is unbound")
            }
            SlError::DynamicNegation { rule } => {
                write!(f, "rule {rule}: negated atom with a variable relation term")
            }
            SlError::NotStratified => write!(f, "program is not stratified"),
            SlError::FixpointLimit(n) => write!(f, "fixpoint exceeded {n} iterations"),
            SlError::Untranslatable(msg) => write!(f, "not translatable to TA: {msg}"),
            SlError::Rel(e) => write!(f, "{e}"),
            SlError::Tabular(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for SlError {}

impl From<tabular_relational::RelError> for SlError {
    fn from(e: tabular_relational::RelError) -> SlError {
        SlError::Rel(e)
    }
}

impl From<tabular_algebra::AlgebraError> for SlError {
    fn from(e: tabular_algebra::AlgebraError) -> SlError {
        SlError::Tabular(e)
    }
}

/// Result alias.
pub type Result<T> = std::result::Result<T, SlError>;

#[cfg(test)]
mod tests {
    #[test]
    fn display() {
        let e = super::SlError::FixpointLimit(3);
        assert!(e.to_string().contains('3'));
    }
}
