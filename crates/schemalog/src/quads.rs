//! The quadruple view of a SchemaLog database.
//!
//! SchemaLog_d formulas speak about a relational database through atoms
//! `rel[tid : attr → value]`; semantically the database *is* a set of
//! quadruples `(rel, tid, attr, value)` — the same move as the paper's
//! canonical representation (§4.1), which is why the Theorem 4.5 embedding
//! factors through it.

use std::collections::HashMap;
use tabular_core::{Symbol, SymbolSet};
use tabular_relational::relation::{RelDatabase, Relation};

/// One fact: `(rel, tid, attr, value)`.
pub type Quad = [Symbol; 4];

/// A set of quadruples with a per-relation index.
#[derive(Clone, Debug, Default)]
pub struct QuadDb {
    quads: Vec<Quad>,
    seen: std::collections::HashSet<Quad>,
    by_rel: HashMap<Symbol, Vec<usize>>,
    by_rel_tid: HashMap<(Symbol, Symbol), Vec<usize>>,
}

impl QuadDb {
    /// Empty database.
    pub fn new() -> QuadDb {
        QuadDb::default()
    }

    /// Insert a quad; returns true if new.
    pub fn insert(&mut self, q: Quad) -> bool {
        if !self.seen.insert(q) {
            return false;
        }
        self.by_rel.entry(q[0]).or_default().push(self.quads.len());
        self.by_rel_tid
            .entry((q[0], q[1]))
            .or_default()
            .push(self.quads.len());
        self.quads.push(q);
        true
    }

    /// Membership.
    pub fn contains(&self, q: &Quad) -> bool {
        self.seen.contains(q)
    }

    /// Number of quads.
    pub fn len(&self) -> usize {
        self.quads.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.quads.is_empty()
    }

    /// All quads.
    pub fn iter(&self) -> impl Iterator<Item = &Quad> {
        self.quads.iter()
    }

    /// Quads of one relation (fast path for constant relation terms).
    pub fn iter_rel(&self, rel: Symbol) -> impl Iterator<Item = &Quad> {
        self.by_rel
            .get(&rel)
            .into_iter()
            .flatten()
            .map(|&i| &self.quads[i])
    }

    /// Quads of one relation and tuple id (the hot path of the join: the
    /// first atom of a rule binds the tid, every further atom on the same
    /// tuple hits this index).
    pub fn iter_rel_tid(&self, rel: Symbol, tid: Symbol) -> impl Iterator<Item = &Quad> {
        self.by_rel_tid
            .get(&(rel, tid))
            .into_iter()
            .flatten()
            .map(|&i| &self.quads[i])
    }

    /// The distinct relation symbols present.
    pub fn rel_names(&self) -> SymbolSet {
        self.by_rel.keys().copied().collect()
    }

    /// View a relational database as quads, minting one fresh tuple id per
    /// tuple (tuple ids are first-class citizens in the SchemaLog model).
    pub fn from_relations(db: &RelDatabase) -> QuadDb {
        let mut out = QuadDb::new();
        for rel in db.relations() {
            for tuple in rel.tuples() {
                let tid = Symbol::fresh_value();
                for (&attr, &val) in rel.attrs().iter().zip(tuple) {
                    out.insert([rel.name(), tid, attr, val]);
                }
            }
        }
        out
    }

    /// Reassemble relations from quads. Each requested relation gets the
    /// union of attributes occurring for it (sorted canonically); tuples
    /// are grouped by tuple id, missing attributes filled with ⊥. The
    /// tuple ids themselves are dropped (they are representation, not
    /// data).
    pub fn to_relations(&self, rels: &[Symbol]) -> RelDatabase {
        let mut out = RelDatabase::new();
        for &rel in rels {
            let quads: Vec<&Quad> = self.iter_rel(rel).collect();
            let mut attrs: Vec<Symbol> = SymbolSet::from_iter(quads.iter().map(|q| q[2]))
                .iter()
                .collect();
            attrs.sort_by(|a, b| a.canonical_cmp(*b));
            let mut rows: Vec<(Symbol, Vec<Symbol>)> = Vec::new();
            for q in &quads {
                let slot = match rows.iter_mut().find(|(tid, _)| *tid == q[1]) {
                    Some((_, row)) => row,
                    None => {
                        rows.push((q[1], vec![Symbol::Null; attrs.len()]));
                        &mut rows.last_mut().expect("just pushed").1
                    }
                };
                let j = attrs.iter().position(|&a| a == q[2]).expect("attr known");
                slot[j] = q[3];
            }
            let mut relation = Relation::empty(rel, attrs).expect("attrs are a deduplicated set");
            for (_, row) in rows {
                relation.insert(row).expect("arity by construction");
            }
            out.set(relation);
        }
        out
    }

    /// The quads as a 4-ary relation `Quad(Rel, Tid, Attr, Val)` — the
    /// bridge into the Theorem 4.1 pipeline.
    pub fn to_relation(&self, name: Symbol) -> Relation {
        let mut r = Relation::empty(
            name,
            vec![
                Symbol::name("Rel"),
                Symbol::name("Tid"),
                Symbol::name("Attr"),
                Symbol::name("Val"),
            ],
        )
        .expect("static attrs");
        for q in &self.quads {
            r.insert(q.to_vec()).expect("arity 4");
        }
        r
    }

    /// Inverse of [`QuadDb::to_relation`].
    pub fn from_relation(rel: &Relation) -> QuadDb {
        let mut out = QuadDb::new();
        for t in rel.tuples() {
            out.insert([t[0], t[1], t[2], t[3]]);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db() -> RelDatabase {
        RelDatabase::from_relations([
            Relation::new(
                "sales",
                &["part", "sold"],
                &[&["nuts", "50"], &["bolts", "70"]],
            ),
            Relation::new("regions", &["name"], &[&["east"]]),
        ])
    }

    #[test]
    fn from_relations_counts() {
        let q = QuadDb::from_relations(&db());
        assert_eq!(q.len(), 2 * 2 + 1);
        assert_eq!(q.iter_rel(Symbol::name("sales")).count(), 4);
        assert_eq!(q.rel_names().len(), 2);
    }

    #[test]
    fn tuples_share_a_tid_per_row() {
        let q = QuadDb::from_relations(&db());
        let tids: SymbolSet = q.iter_rel(Symbol::name("sales")).map(|x| x[1]).collect();
        assert_eq!(tids.len(), 2);
    }

    #[test]
    fn round_trip_to_relations() {
        let original = db();
        let q = QuadDb::from_relations(&original);
        let names: Vec<Symbol> = original.relations().iter().map(|r| r.name()).collect();
        let back = q.to_relations(&names);
        assert!(back.equiv(&original));
    }

    #[test]
    fn ragged_quads_fill_with_null() {
        let mut q = QuadDb::new();
        let t1 = Symbol::value("t1");
        let t2 = Symbol::value("t2");
        q.insert([Symbol::name("r"), t1, Symbol::name("a"), Symbol::value("1")]);
        q.insert([Symbol::name("r"), t2, Symbol::name("b"), Symbol::value("2")]);
        let back = q.to_relations(&[Symbol::name("r")]);
        let r = back.get_str("r").unwrap();
        assert_eq!(r.arity(), 2);
        assert_eq!(r.len(), 2);
        assert!(r.tuples().any(|t| t.contains(&Symbol::Null)));
    }

    #[test]
    fn quad_relation_round_trip() {
        let q = QuadDb::from_relations(&db());
        let rel = q.to_relation(Symbol::name("Quad"));
        assert_eq!(rel.len(), q.len());
        let back = QuadDb::from_relation(&rel);
        assert_eq!(back.len(), q.len());
        for quad in q.iter() {
            assert!(back.contains(quad));
        }
    }

    #[test]
    fn insert_dedupes() {
        let mut q = QuadDb::new();
        let quad = [
            Symbol::name("r"),
            Symbol::value("t"),
            Symbol::name("a"),
            Symbol::value("1"),
        ];
        assert!(q.insert(quad));
        assert!(!q.insert(quad));
        assert_eq!(q.len(), 1);
    }
}
