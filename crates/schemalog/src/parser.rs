//! Parser for the SchemaLog_d surface syntax:
//!
//! ```text
//! -- derived relation of parts that sold at least 60 units anywhere
//! big[T : part -> P] :- sales[T : part -> P], sales[T : sold -> S], S >= 60.
//!
//! -- one relation per part (dynamic head): the SchemaLog SPLIT
//! P[T : region -> R] :- sales[T : part -> P], sales[T : region -> R].
//!
//! -- stratified negation
//! rest[T : part -> P] :- sales[T : part -> P], not big[T : part -> P].
//! ```
//!
//! Conventions: identifiers starting with an uppercase letter are
//! variables; bare lowercase identifiers are *names* in relation/attribute
//! positions and *values* in tid/value positions; `v:x` / `n:x` force a
//! sort; `_` is ⊥; strings may be double-quoted. Multi-pair atoms flatten
//! to one [`Atom`] per pair (sharing the tid term). Comments run from
//! `--` to end of line.

use crate::ast::{Atom, CmpOp, Literal, Rule, SlProgram, Term};
use crate::error::{Result, SlError};
use tabular_core::Symbol;

#[derive(Clone, PartialEq, Eq, Debug)]
enum Tok {
    Word(String),
    Value(String),
    Name(String),
    Null,
    LBracket,
    RBracket,
    Colon,
    MapsTo,
    Comma,
    Period,
    ColonDash,
    Not,
    Cmp(CmpOp),
}

fn is_word_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_' || c == '\''
}

fn lex(src: &str) -> Result<Vec<(usize, Tok)>> {
    let mut toks = Vec::new();
    let mut pos = 0usize;
    let err = |at: usize, msg: &str| SlError::Parse {
        at,
        msg: msg.to_owned(),
    };
    while pos < src.len() {
        let rest = &src[pos..];
        let c = rest.chars().next().expect("char boundary");
        match c {
            c if c.is_whitespace() => pos += c.len_utf8(),
            '-' if rest.starts_with("--") => {
                pos += rest.find('\n').unwrap_or(rest.len());
            }
            '-' if rest.starts_with("->") => {
                toks.push((pos, Tok::MapsTo));
                pos += 2;
            }
            ':' if rest.starts_with(":-") => {
                toks.push((pos, Tok::ColonDash));
                pos += 2;
            }
            ':' => {
                toks.push((pos, Tok::Colon));
                pos += 1;
            }
            '[' => {
                toks.push((pos, Tok::LBracket));
                pos += 1;
            }
            ']' => {
                toks.push((pos, Tok::RBracket));
                pos += 1;
            }
            ',' => {
                toks.push((pos, Tok::Comma));
                pos += 1;
            }
            '.' => {
                toks.push((pos, Tok::Period));
                pos += 1;
            }
            '!' if rest.starts_with("!=") => {
                toks.push((pos, Tok::Cmp(CmpOp::Ne)));
                pos += 2;
            }
            '=' => {
                toks.push((pos, Tok::Cmp(CmpOp::Eq)));
                pos += 1;
            }
            '<' if rest.starts_with("<=") => {
                toks.push((pos, Tok::Cmp(CmpOp::Le)));
                pos += 2;
            }
            '<' => {
                toks.push((pos, Tok::Cmp(CmpOp::Lt)));
                pos += 1;
            }
            '>' if rest.starts_with(">=") => {
                toks.push((pos, Tok::Cmp(CmpOp::Ge)));
                pos += 2;
            }
            '>' => {
                toks.push((pos, Tok::Cmp(CmpOp::Gt)));
                pos += 1;
            }
            '"' => {
                let mut out = String::new();
                let mut closed = None;
                for (i, ch) in rest[1..].char_indices() {
                    if ch == '"' {
                        closed = Some(i);
                        break;
                    }
                    out.push(ch);
                }
                match closed {
                    Some(i) => {
                        toks.push((pos, Tok::Word(out)));
                        pos += i + 2;
                    }
                    None => return Err(err(pos, "unterminated string")),
                }
            }
            c if is_word_char(c) => {
                let word: String = rest.chars().take_while(|&c| is_word_char(c)).collect();
                pos += word.len();
                if (word == "v" || word == "n")
                    && src[pos..].starts_with(':')
                    && !src[pos..].starts_with(":-")
                {
                    pos += 1;
                    let rest2 = &src[pos..];
                    let text: String = rest2.chars().take_while(|&c| is_word_char(c)).collect();
                    if text.is_empty() {
                        return Err(err(pos, "expected text after sort tag"));
                    }
                    pos += text.len();
                    toks.push((
                        pos,
                        if word == "v" {
                            Tok::Value(text)
                        } else {
                            Tok::Name(text)
                        },
                    ));
                } else if word == "_" {
                    toks.push((pos, Tok::Null));
                } else if word == "not" {
                    toks.push((pos, Tok::Not));
                } else {
                    toks.push((pos, Tok::Word(word)));
                }
            }
            _ => return Err(err(pos, &format!("unexpected character {c:?}"))),
        }
    }
    Ok(toks)
}

struct Parser {
    toks: Vec<(usize, Tok)>,
    pos: usize,
}

/// Which default sort a bare lowercase word takes in a given position.
#[derive(Clone, Copy)]
enum Slot {
    /// Relation / attribute positions: names.
    Name,
    /// Tid / value positions: values.
    Value,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|(_, t)| t)
    }

    fn at(&self) -> usize {
        self.toks
            .get(self.pos)
            .or_else(|| self.toks.last())
            .map_or(0, |(p, _)| *p)
    }

    fn err(&self, msg: impl Into<String>) -> SlError {
        SlError::Parse {
            at: self.at(),
            msg: msg.into(),
        }
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|(_, t)| t.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, want: &Tok, what: &str) -> Result<()> {
        match self.next() {
            Some(ref t) if t == want => Ok(()),
            other => Err(self.err(format!("expected {what}, found {other:?}"))),
        }
    }

    fn term(&mut self, slot: Slot) -> Result<Term> {
        match self.next() {
            Some(Tok::Word(w)) => {
                if w.chars().next().is_some_and(|c| c.is_ascii_uppercase()) {
                    Ok(Term::var(&w))
                } else {
                    Ok(Term::Const(match slot {
                        Slot::Name => Symbol::name(&w),
                        Slot::Value => Symbol::value(&w),
                    }))
                }
            }
            Some(Tok::Value(w)) => Ok(Term::Const(Symbol::value(&w))),
            Some(Tok::Name(w)) => Ok(Term::Const(Symbol::name(&w))),
            Some(Tok::Null) => Ok(Term::Const(Symbol::Null)),
            other => Err(self.err(format!("expected term, found {other:?}"))),
        }
    }

    /// Parse a surface atom, flattening multi-pair bodies.
    fn atom(&mut self) -> Result<Vec<Atom>> {
        let rel = self.term(Slot::Name)?;
        self.expect(&Tok::LBracket, "`[`")?;
        let tid = self.term(Slot::Value)?;
        self.expect(&Tok::Colon, "`:`")?;
        let mut atoms = Vec::new();
        loop {
            let attr = self.term(Slot::Name)?;
            self.expect(&Tok::MapsTo, "`->`")?;
            let value = self.term(Slot::Value)?;
            atoms.push(Atom {
                rel,
                tid,
                attr,
                value,
            });
            match self.next() {
                Some(Tok::Comma) => continue,
                Some(Tok::RBracket) => break,
                other => return Err(self.err(format!("expected `,` or `]`, found {other:?}"))),
            }
        }
        Ok(atoms)
    }

    fn literal(&mut self) -> Result<Vec<Literal>> {
        if self.peek() == Some(&Tok::Not) {
            self.next();
            return Ok(self.atom()?.into_iter().map(Literal::Neg).collect());
        }
        // A comparison starts with a term not followed by `[`.
        let save = self.pos;
        let lhs = self.term(Slot::Value)?;
        if let Some(Tok::Cmp(op)) = self.peek().cloned() {
            self.next();
            let rhs = self.term(Slot::Value)?;
            return Ok(vec![Literal::Cmp { op, lhs, rhs }]);
        }
        self.pos = save;
        Ok(self.atom()?.into_iter().map(Literal::Pos).collect())
    }

    fn rule(&mut self) -> Result<Rule> {
        let head = self.atom()?;
        match self.next() {
            Some(Tok::Period) => Ok(Rule { head, body: vec![] }),
            Some(Tok::ColonDash) => {
                let mut body = Vec::new();
                loop {
                    body.extend(self.literal()?);
                    match self.next() {
                        Some(Tok::Comma) => continue,
                        Some(Tok::Period) => break,
                        other => {
                            return Err(self.err(format!("expected `,` or `.`, found {other:?}")))
                        }
                    }
                }
                Ok(Rule { head, body })
            }
            other => Err(self.err(format!("expected `.` or `:-`, found {other:?}"))),
        }
    }
}

/// Parse a SchemaLog_d program.
pub fn parse(src: &str) -> Result<SlProgram> {
    let toks = lex(src)?;
    let mut p = Parser { toks, pos: 0 };
    let mut rules = Vec::new();
    while p.peek().is_some() {
        rules.push(p.rule()?);
    }
    Ok(SlProgram { rules })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_selection_rule() {
        let p = parse("big[T : part -> P] :- sales[T : part -> P], S >= 60, sales[T : sold -> S].")
            .unwrap();
        assert_eq!(p.rules.len(), 1);
        assert_eq!(p.rules[0].head.len(), 1);
        assert_eq!(p.rules[0].body.len(), 3);
        assert!(matches!(
            p.rules[0].body[1],
            Literal::Cmp { op: CmpOp::Ge, .. }
        ));
    }

    #[test]
    fn multi_pair_atoms_flatten() {
        let p = parse("out[T : a -> X, b -> Y] :- r[T : a -> X, b -> Y].").unwrap();
        assert_eq!(p.rules[0].head.len(), 2);
        assert_eq!(p.rules[0].body.len(), 2);
        // All four atoms share the tid variable T.
        let tid = p.rules[0].head[0].tid;
        assert!(p.rules[0].head.iter().all(|a| a.tid == tid));
    }

    #[test]
    fn positional_sort_defaults() {
        let p = parse("ans[t1 : attr -> val] .").unwrap();
        let a = &p.rules[0].head[0];
        assert_eq!(a.rel, Term::name("ans"));
        assert_eq!(a.tid, Term::value("t1"));
        assert_eq!(a.attr, Term::name("attr"));
        assert_eq!(a.value, Term::value("val"));
    }

    #[test]
    fn sort_tags_and_null_override() {
        let p = parse("ans[T : region -> n:Total] :- r[T : x -> _], v:east = v:east.").unwrap();
        let a = &p.rules[0].head[0];
        assert_eq!(a.value, Term::name("Total"));
        let Literal::Pos(b) = &p.rules[0].body[0] else {
            panic!()
        };
        assert_eq!(b.value, Term::Const(Symbol::Null));
    }

    #[test]
    fn variables_start_uppercase() {
        let p = parse("ans[T : a -> Xyz] :- r[T : a -> Xyz].").unwrap();
        assert!(p.rules[0].head[0].value.is_var());
        assert!(p.rules[0].head[0].tid.is_var());
    }

    #[test]
    fn negation_and_facts() {
        let p = parse("fact[t : a -> 1].\nans[T : a -> X] :- r[T : a -> X], not fact[T : a -> X].")
            .unwrap();
        assert_eq!(p.rules.len(), 2);
        assert!(p.rules[0].body.is_empty());
        assert!(matches!(p.rules[1].body[1], Literal::Neg(_)));
    }

    #[test]
    fn dynamic_heads_parse() {
        let p =
            parse("P[T : region -> R] :- sales[T : part -> P], sales[T : region -> R].").unwrap();
        assert!(p.has_dynamic_heads());
    }

    #[test]
    fn comments_and_quotes() {
        let p = parse("-- a comment\nans[T : a -> \"two words\"] :- r[T : a -> X].").unwrap();
        assert_eq!(
            p.rules[0].head[0].value,
            Term::Const(Symbol::value("two words"))
        );
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("ans[T : a -> X]").is_err()); // missing period
        assert!(parse("ans[T a -> X].").is_err()); // missing colon
        assert!(parse("ans[T : a -> X] :- .").is_err()); // empty body
        assert!(parse("ans[T : a -> \"oops].").is_err()); // unterminated
        assert!(parse("@").is_err());
    }
}
