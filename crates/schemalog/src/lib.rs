//! # tabular-schemalog
//!
//! **SchemaLog_d** (paper §4.2): the single-database fragment of
//! SchemaLog (Lakshmanan, Sadri & Subramanian), whose atoms
//! `rel[tid : attr → value]` treat relation names, attribute names, and
//! tuple ids as first-class citizens — and its embedding into the tabular
//! algebra (**Theorem 4.5**).
//!
//! * [`ast`] / [`parser`] — terms, atoms, rules, and a textual syntax;
//! * [`quads`] — the quadruple view `Quad(Rel, Tid, Attr, Val)` of a
//!   relational database (the shape shared with the paper's canonical
//!   representation);
//! * [`stratify`] / [`eval`] — stratified bottom-up evaluation, naive and
//!   semi-naive;
//! * [`translate`] — the Theorem 4.5 pipeline: rules → relational algebra
//!   over `Quad` → `FO + while` → (Theorem 4.1) → tabular algebra.
//!
//! ```
//! use tabular_schemalog::{parser::parse, eval::{eval, Strategy, SlLimits}, quads::QuadDb};
//! use tabular_relational::relation::{RelDatabase, Relation};
//!
//! let db = RelDatabase::from_relations([
//!     Relation::new("sales", &["part", "sold"], &[&["nuts", "50"], &["bolts", "70"]]),
//! ]);
//! let q = QuadDb::from_relations(&db);
//! let p = parse("big[T : part -> P] :- sales[T : part -> P], sales[T : sold -> S], S >= 60.").unwrap();
//! let out = eval(&p, &q, Strategy::SemiNaive, &SlLimits::default()).unwrap();
//! let rels = out.to_relations(&[tabular_core::Symbol::name("big")]);
//! assert_eq!(rels.get_str("big").unwrap().len(), 1);
//! ```

#![warn(missing_docs)]

pub mod ast;
pub mod error;
pub mod eval;
pub mod parser;
pub mod pretty;
pub mod quads;
pub mod stratify;
pub mod translate;

pub use ast::{Atom, CmpOp, Literal, Rule, SlProgram, Term};
pub use error::SlError;
pub use eval::{eval, SlLimits, Strategy};
pub use parser::parse;
pub use quads::{Quad, QuadDb};
pub use translate::{
    order_relation, run_translated, run_translated_governed, run_translated_traced, translate,
    translate_with_order,
};
