//! Abstract syntax of SchemaLog_d (paper §4.2): the single-database
//! fragment of SchemaLog (Lakshmanan, Sadri & Subramanian), whose atomic
//! formulas are
//!
//! ```text
//!     rel[ tid : attr → value ]
//! ```
//!
//! with `rel`, `tid`, `attr`, `value` constants *or variables* — relation
//! and attribute names are first-class citizens, which is what gives
//! SchemaLog its restructuring power (a variable may range over relation
//! names; a head may *create* relations named by data).

use tabular_core::Symbol;

/// A term: a constant symbol or a variable.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Term {
    /// A constant (name, value, or ⊥).
    Const(Symbol),
    /// A variable, interned by name.
    Var(tabular_core::Istr),
}

impl Term {
    /// A variable term.
    pub fn var(name: &str) -> Term {
        Term::Var(tabular_core::interner::intern(name))
    }

    /// A constant name term.
    pub fn name(s: &str) -> Term {
        Term::Const(Symbol::name(s))
    }

    /// A constant value term.
    pub fn value(s: &str) -> Term {
        Term::Const(Symbol::value(s))
    }

    /// True for variables.
    pub fn is_var(&self) -> bool {
        matches!(self, Term::Var(_))
    }
}

/// A (flattened) SchemaLog atom `rel[tid : attr → value]`. Multi-pair
/// surface atoms `rel[T : a → X, b → Y]` are flattened to one atom per
/// pair during parsing (they share the tid term).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Atom {
    /// Relation term.
    pub rel: Term,
    /// Tuple-id term.
    pub tid: Term,
    /// Attribute term.
    pub attr: Term,
    /// Value term.
    pub value: Term,
}

impl Atom {
    /// All four terms, in order.
    pub fn terms(&self) -> [Term; 4] {
        [self.rel, self.tid, self.attr, self.value]
    }

    /// The variables of the atom.
    pub fn vars(&self) -> impl Iterator<Item = tabular_core::Istr> + '_ {
        self.terms().into_iter().filter_map(|t| match t {
            Term::Var(v) => Some(v),
            Term::Const(_) => None,
        })
    }
}

/// Comparison operators of the built-in predicates.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    /// Evaluate on two symbols. Values that both parse as integers compare
    /// numerically; otherwise the canonical symbol order applies.
    pub fn eval(self, a: Symbol, b: Symbol) -> bool {
        use std::cmp::Ordering;
        let ord = match (num(a), num(b)) {
            (Some(x), Some(y)) => x.cmp(&y),
            _ => a.canonical_cmp(b),
        };
        match self {
            CmpOp::Eq => a == b,
            CmpOp::Ne => a != b,
            CmpOp::Lt => ord == Ordering::Less,
            CmpOp::Le => ord != Ordering::Greater,
            CmpOp::Gt => ord == Ordering::Greater,
            CmpOp::Ge => ord != Ordering::Less,
        }
    }

    /// Surface spelling.
    pub fn text(self) -> &'static str {
        match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        }
    }
}

fn num(s: Symbol) -> Option<i128> {
    s.text().and_then(|t| t.parse().ok())
}

/// A body literal.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Literal {
    /// A positive atom.
    Pos(Atom),
    /// A negated atom (stratified negation; the relation term must be a
    /// constant so strata are well-defined).
    Neg(Atom),
    /// A built-in comparison; both terms must be bound by positive
    /// literals when it is evaluated (safety).
    Cmp {
        /// Operator.
        op: CmpOp,
        /// Left term.
        lhs: Term,
        /// Right term.
        rhs: Term,
    },
}

/// A rule `head :- body`. The head is a conjunction of atoms sharing
/// variables with the body (a surface head with several pairs flattens to
/// several atoms).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Rule {
    /// Head atoms (derived quads).
    pub head: Vec<Atom>,
    /// Body literals.
    pub body: Vec<Literal>,
}

/// A SchemaLog_d program.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct SlProgram {
    /// The rules.
    pub rules: Vec<Rule>,
}

impl SlProgram {
    /// Relation-name constants appearing in rule heads (the program's
    /// derived predicates, where statically known).
    pub fn derived_rels(&self) -> Vec<Symbol> {
        let mut out = Vec::new();
        for r in &self.rules {
            for h in &r.head {
                if let Term::Const(s) = h.rel {
                    if !out.contains(&s) {
                        out.push(s);
                    }
                }
            }
        }
        out
    }

    /// True if some head names its relation with a variable (data-driven
    /// relation creation — SchemaLog's restructuring signature move).
    pub fn has_dynamic_heads(&self) -> bool {
        self.rules
            .iter()
            .flat_map(|r| &r.head)
            .any(|a| a.rel.is_var())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn terms_and_vars() {
        let a = Atom {
            rel: Term::name("sales"),
            tid: Term::var("T"),
            attr: Term::name("part"),
            value: Term::var("P"),
        };
        let vars: Vec<_> = a.vars().collect();
        assert_eq!(vars.len(), 2);
        assert!(a.tid.is_var());
        assert!(!a.rel.is_var());
    }

    #[test]
    fn cmp_is_numeric_when_possible() {
        let a = Symbol::value("9");
        let b = Symbol::value("10");
        assert!(CmpOp::Lt.eval(a, b)); // 9 < 10 numerically (not lexically)
        assert!(CmpOp::Le.eval(a, a));
        assert!(CmpOp::Ne.eval(a, b));
        assert!(CmpOp::Ge.eval(b, a));
    }

    #[test]
    fn cmp_falls_back_to_canonical_order() {
        let a = Symbol::value("apple");
        let b = Symbol::value("banana");
        assert!(CmpOp::Lt.eval(a, b));
        assert!(CmpOp::Gt.eval(b, a));
        // Mixed numeric/non-numeric uses canonical order too.
        assert!(CmpOp::Ne.eval(Symbol::value("1"), Symbol::value("one")));
    }

    #[test]
    fn derived_rels_and_dynamic_heads() {
        let static_head = Rule {
            head: vec![Atom {
                rel: Term::name("ans"),
                tid: Term::var("T"),
                attr: Term::name("a"),
                value: Term::var("X"),
            }],
            body: vec![],
        };
        let dynamic_head = Rule {
            head: vec![Atom {
                rel: Term::var("P"),
                tid: Term::var("T"),
                attr: Term::name("a"),
                value: Term::var("X"),
            }],
            body: vec![],
        };
        let p = SlProgram {
            rules: vec![static_head.clone()],
        };
        assert_eq!(p.derived_rels(), vec![Symbol::name("ans")]);
        assert!(!p.has_dynamic_heads());
        let q = SlProgram {
            rules: vec![static_head, dynamic_head],
        };
        assert!(q.has_dynamic_heads());
    }
}
