//! Pretty-printer for SchemaLog_d programs — the inverse of
//! [`crate::parser::parse`]: `parse(render(p))` reproduces `p` exactly
//! (flattened form).

use crate::ast::{Atom, Literal, Rule, SlProgram, Term};
use std::fmt::Write;
use tabular_core::Symbol;

fn looks_like_var(s: &str) -> bool {
    s.chars().next().is_some_and(|c| c.is_ascii_uppercase())
}

fn word_ok(s: &str) -> bool {
    !s.is_empty()
        && s.chars()
            .all(|c| c.is_alphanumeric() || c == '_' || c == '\'')
        && s != "_"
        && s != "not"
        && !(s == "v" || s == "n")
}

/// Render a term; `name_slot` says whether a bare word defaults to the
/// name sort in this position.
fn render_term(t: Term, name_slot: bool, out: &mut String) {
    match t {
        Term::Var(v) => out.push_str(v.as_str()),
        Term::Const(Symbol::Null) => out.push('_'),
        Term::Const(sym) => {
            let text = sym.text().expect("non-null constant");
            let bare_ok = word_ok(text) && !looks_like_var(text);
            let matches_default = match sym {
                Symbol::Name(_) => name_slot,
                Symbol::Value(_) => !name_slot,
                Symbol::Null => unreachable!(),
            };
            if bare_ok && matches_default {
                out.push_str(text);
            } else {
                let tag = if sym.is_name() { 'n' } else { 'v' };
                if word_ok(text) {
                    write!(out, "{tag}:{text}").expect("string write");
                } else {
                    // The surface syntax has no quoting inside tags for
                    // arbitrary text; fall back to quoted words (names).
                    write!(out, "\"{text}\"").expect("string write");
                }
            }
        }
    }
}

fn render_atom(a: &Atom, out: &mut String) {
    render_term(a.rel, true, out);
    out.push('[');
    render_term(a.tid, false, out);
    out.push_str(" : ");
    render_term(a.attr, true, out);
    out.push_str(" -> ");
    render_term(a.value, false, out);
    out.push(']');
}

fn render_rule(r: &Rule, out: &mut String) {
    // Heads sharing (rel, tid) — the only shape the parser produces —
    // render in the multi-pair surface form `rel[T : a -> X, b -> Y]`.
    let (first_rel, first_tid) = (r.head[0].rel, r.head[0].tid);
    let groupable = r
        .head
        .iter()
        .all(|h| h.rel == first_rel && h.tid == first_tid);
    if groupable {
        render_term(first_rel, true, out);
        out.push('[');
        render_term(first_tid, false, out);
        out.push_str(" : ");
        for (i, h) in r.head.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            render_term(h.attr, true, out);
            out.push_str(" -> ");
            render_term(h.value, false, out);
        }
        out.push(']');
    } else {
        // Hand-built AST with heterogeneous heads: not expressible in the
        // surface syntax as one rule; rendered as separate atoms for
        // display purposes.
        for (i, h) in r.head.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            render_atom(h, out);
        }
    }
    if !r.body.is_empty() {
        out.push_str(" :- ");
        for (i, lit) in r.body.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            match lit {
                Literal::Pos(a) => render_atom(a, out),
                Literal::Neg(a) => {
                    out.push_str("not ");
                    render_atom(a, out);
                }
                Literal::Cmp { op, lhs, rhs } => {
                    render_term(*lhs, false, out);
                    write!(out, " {} ", op.text()).expect("string write");
                    render_term(*rhs, false, out);
                }
            }
        }
    }
    out.push_str(".\n");
}

/// Render a program in the concrete syntax.
///
/// Multi-head rules render as multiple head atoms separated by commas,
/// which the parser reads back as the same flattened rule when the heads
/// share their tid (the flattening normal form); programs produced by the
/// parser round-trip exactly.
pub fn render(p: &SlProgram) -> String {
    let mut out = String::new();
    for r in &p.rules {
        render_rule(r, &mut out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn round_trip(src: &str) {
        let p1 = parse(src).unwrap();
        let rendered = render(&p1);
        let p2 = parse(&rendered)
            .unwrap_or_else(|e| panic!("re-parse failed: {e}\nrendered:\n{rendered}"));
        assert_eq!(p1, p2, "round trip changed program:\n{rendered}");
    }

    #[test]
    fn round_trips_multi_pair_heads() {
        round_trip("out[T : a -> X, b -> Y] :- r[T : a -> X], r[T : b -> Y].");
    }

    #[test]
    fn round_trips_representative_programs() {
        round_trip("big[T : part -> P] :- sales[T : part -> P], sales[T : sold -> S], S >= 60.");
        round_trip("flat[T : A -> V] :- sales[T : A -> V].");
        round_trip("P[T : region -> R] :- sales[T : part -> P], sales[T : region -> R].");
        round_trip(
            "rest[T : part -> P] :- sales[T : part -> P], not big[T : part -> P], P != v:m.",
        );
        round_trip("fact[t0 : kind -> special].");
    }

    #[test]
    fn sort_tags_render_when_defaults_mismatch() {
        // A *name* in value position must carry its tag.
        round_trip("ans[T : region -> n:Total] :- r[T : x -> _].");
        // A *value* in relation position likewise.
        round_trip("ans[T : a -> X] :- v:east[T : a -> X].");
    }

    #[test]
    fn uppercase_constants_render_tagged() {
        // The constant name "Total" would otherwise read back as a
        // variable.
        round_trip("ans[T : n:Region -> X] :- r[T : n:Region -> X].");
    }

    #[test]
    fn rendering_is_readable() {
        let p = parse("big[T : part -> P] :- sales[T : part -> P].").unwrap();
        assert_eq!(render(&p), "big[T : part -> P] :- sales[T : part -> P].\n");
    }
}
