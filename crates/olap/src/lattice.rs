//! The aggregation lattice: `ROLLUP` and `CUBE` over relational fact
//! tables — the full version of the summary data of Figure 1, where
//! `TotalPartSales`, `TotalRegionSales`, and `GrandTotal` are exactly
//! three of the four nodes of `CUBE(Part, Region)`.
//!
//! Group-bys that aggregate a dimension away mark it with the *name*
//! `Total` in the output — the same convention the paper uses when it
//! absorbs summary rows into `SalesInfo2`–`SalesInfo4` (the `Total` row
//! and column attributes are names).

use crate::agg::{parse_measure, render_measure, Agg};
use crate::error::{OlapError, Result};
use tabular_core::{Symbol, Table};

/// The `ALL` marker used in aggregated-away dimension positions.
pub fn all_marker() -> Symbol {
    Symbol::name("Total")
}

/// Group by exactly the dimensions in `keep` (a sub-list of `dims`),
/// marking the others with [`all_marker`]; one output row per group.
fn grouping(
    t: &Table,
    dims: &[Symbol],
    keep: &[bool],
    measure: Symbol,
    agg: Agg,
) -> Result<Vec<Vec<Symbol>>> {
    let dim_cols: Vec<usize> = dims
        .iter()
        .map(|&d| {
            t.cols_named(d)
                .first()
                .copied()
                .ok_or(OlapError::MissingAttribute(d))
        })
        .collect::<Result<_>>()?;
    let measure_col = *t
        .cols_named(measure)
        .first()
        .ok_or(OlapError::MissingAttribute(measure))?;

    let mut keys: Vec<Vec<Symbol>> = Vec::new();
    let mut groups: Vec<Vec<f64>> = Vec::new();
    for i in 1..=t.height() {
        let key: Vec<Symbol> = dim_cols
            .iter()
            .zip(keep)
            .map(|(&j, &k)| if k { t.get(i, j) } else { all_marker() })
            .collect();
        let slot = match keys.iter().position(|x| *x == key) {
            Some(p) => p,
            None => {
                keys.push(key);
                groups.push(Vec::new());
                keys.len() - 1
            }
        };
        if let Some(v) = parse_measure(t.get(i, measure_col), measure)? {
            groups[slot].push(v);
        }
    }
    Ok(keys
        .into_iter()
        .zip(groups)
        .map(|(mut key, vals)| {
            key.push(agg.apply(&vals).map_or(Symbol::Null, render_measure));
            key
        })
        .collect())
}

fn assemble(name: &str, dims: &[Symbol], out_attr: &str, rows: Vec<Vec<Symbol>>) -> Table {
    let attrs: Vec<Symbol> = dims
        .iter()
        .copied()
        .chain(std::iter::once(Symbol::name(out_attr)))
        .collect();
    Table::relational_syms(Symbol::name(name), &attrs, &rows)
}

/// `ROLLUP(dims…)`: the hierarchy of groupings obtained by successively
/// aggregating away the *last* dimension — `(d₁…dₙ), (d₁…dₙ₋₁), …, ()`.
/// One table containing all levels, aggregated positions marked `Total`.
pub fn rollup_table(
    t: &Table,
    dims: &[Symbol],
    measure: Symbol,
    agg: Agg,
    out_name: &str,
    out_attr: &str,
) -> Result<Table> {
    let mut rows = Vec::new();
    for level in (0..=dims.len()).rev() {
        let keep: Vec<bool> = (0..dims.len()).map(|i| i < level).collect();
        rows.extend(grouping(t, dims, &keep, measure, agg)?);
    }
    Ok(assemble(out_name, dims, out_attr, rows))
}

/// `CUBE(dims…)`: every subset of the dimensions — 2ⁿ groupings in one
/// table, aggregated positions marked `Total`.
pub fn cube_table(
    t: &Table,
    dims: &[Symbol],
    measure: Symbol,
    agg: Agg,
    out_name: &str,
    out_attr: &str,
) -> Result<Table> {
    assert!(dims.len() < usize::BITS as usize, "dimension count");
    let mut rows = Vec::new();
    // Enumerate subsets from full grouping down to the grand total.
    let n = dims.len();
    let mut subsets: Vec<u64> = (0..(1u64 << n)).collect();
    subsets.sort_by_key(|s| std::cmp::Reverse(s.count_ones()));
    for subset in subsets {
        let keep: Vec<bool> = (0..n).map(|i| subset & (1 << i) != 0).collect();
        rows.extend(grouping(t, dims, &keep, measure, agg)?);
    }
    Ok(assemble(out_name, dims, out_attr, rows))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tabular_core::fixtures;

    fn nm(s: &str) -> Symbol {
        Symbol::name(s)
    }

    fn dims() -> [Symbol; 2] {
        [nm("Part"), nm("Region")]
    }

    fn lookup(t: &Table, part: Symbol, region: Symbol) -> Option<Symbol> {
        (1..=t.height())
            .find(|&i| t.get(i, 1) == part && t.get(i, 2) == region)
            .map(|i| t.get(i, 3))
    }

    #[test]
    fn cube_contains_the_figure1_summaries() {
        let cube = cube_table(
            &fixtures::sales_relation(),
            &dims(),
            nm("Sold"),
            Agg::Sum,
            "Cube",
            "Total",
        )
        .unwrap();
        // Grand total (both dims aggregated): 420.
        assert_eq!(
            lookup(&cube, all_marker(), all_marker()),
            Some(Symbol::value("420"))
        );
        // TotalPartSales (region aggregated): screws → 160.
        assert_eq!(
            lookup(&cube, Symbol::value("screws"), all_marker()),
            Some(Symbol::value("160"))
        );
        // TotalRegionSales (part aggregated): east → 120.
        assert_eq!(
            lookup(&cube, all_marker(), Symbol::value("east")),
            Some(Symbol::value("120"))
        );
        // Base cell: nuts/west → 60.
        assert_eq!(
            lookup(&cube, Symbol::value("nuts"), Symbol::value("west")),
            Some(Symbol::value("60"))
        );
    }

    #[test]
    fn cube_row_count_is_the_lattice_size() {
        let cube = cube_table(
            &fixtures::sales_relation(),
            &dims(),
            nm("Sold"),
            Agg::Sum,
            "Cube",
            "Total",
        )
        .unwrap();
        // 8 base pairs + 3 parts + 4 regions + 1 grand total.
        assert_eq!(cube.height(), 8 + 3 + 4 + 1);
    }

    #[test]
    fn rollup_is_the_prefix_hierarchy() {
        let roll = rollup_table(
            &fixtures::sales_relation(),
            &dims(),
            nm("Sold"),
            Agg::Sum,
            "Rollup",
            "Total",
        )
        .unwrap();
        // 8 base + 3 per-part + 1 grand total; NO per-region level
        // (region is aggregated first, being last in the dim list).
        assert_eq!(roll.height(), 8 + 3 + 1);
        assert_eq!(
            lookup(&roll, Symbol::value("bolts"), all_marker()),
            Some(Symbol::value("110"))
        );
        assert_eq!(lookup(&roll, all_marker(), Symbol::value("east")), None);
    }

    #[test]
    fn cube_agrees_with_the_dense_cube_model() {
        use crate::cube::Cube;
        let rel = fixtures::make_sales_relation(10, 6);
        let lattice = cube_table(&rel, &dims(), nm("Sold"), Agg::Sum, "C", "Total").unwrap();
        let dense = Cube::from_table(&rel, &dims(), nm("Sold"), Agg::Sum).unwrap();
        assert_eq!(
            lookup(&lattice, all_marker(), all_marker()),
            dense.grand_total(Agg::Sum).map(crate::agg::render_measure)
        );
    }

    #[test]
    fn single_dimension_cube() {
        let c = cube_table(
            &fixtures::sales_relation(),
            &[nm("Part")],
            nm("Sold"),
            Agg::Count,
            "C",
            "N",
        )
        .unwrap();
        // 3 parts + total.
        assert_eq!(c.height(), 4);
        let total = (1..=c.height())
            .find(|&i| c.get(i, 1) == all_marker())
            .unwrap();
        assert_eq!(c.get(total, 2), Symbol::value("8"));
    }

    #[test]
    fn missing_dimension_errors() {
        assert!(matches!(
            cube_table(
                &fixtures::sales_relation(),
                &[nm("Nope")],
                nm("Sold"),
                Agg::Sum,
                "C",
                "T"
            ),
            Err(OlapError::MissingAttribute(_))
        ));
    }
}
