//! Aggregate functions for summarization (the paper's announced
//! future-work operation, §5: "operations corresponding to classification
//! and summarization, two other important functionalities for OLAP").

use crate::error::{OlapError, Result};
use tabular_core::Symbol;

/// An aggregate function over numeric values.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Agg {
    /// Sum.
    Sum,
    /// Count of non-⊥ facts.
    Count,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
    /// Arithmetic mean.
    Avg,
}

impl Agg {
    /// Apply to a list of values; `None` for an empty list (rendered ⊥).
    pub fn apply(self, values: &[f64]) -> Option<f64> {
        if values.is_empty() {
            return if self == Agg::Count { Some(0.0) } else { None };
        }
        Some(match self {
            Agg::Sum => values.iter().sum(),
            Agg::Count => values.len() as f64,
            Agg::Min => values.iter().copied().fold(f64::INFINITY, f64::min),
            Agg::Max => values.iter().copied().fold(f64::NEG_INFINITY, f64::max),
            Agg::Avg => values.iter().sum::<f64>() / values.len() as f64,
        })
    }

    /// Name used in derived attribute labels.
    pub fn label(self) -> &'static str {
        match self {
            Agg::Sum => "sum",
            Agg::Count => "count",
            Agg::Min => "min",
            Agg::Max => "max",
            Agg::Avg => "avg",
        }
    }
}

/// Parse a symbol as a number; ⊥ is `None`, anything non-numeric is an
/// error.
pub fn parse_measure(s: Symbol, context: Symbol) -> Result<Option<f64>> {
    match s {
        Symbol::Null => Ok(None),
        _ => s
            .text()
            .and_then(|t| t.parse::<f64>().ok())
            .map(Some)
            .ok_or(OlapError::NotNumeric { symbol: s, context }),
    }
}

/// Render a number as a value symbol, using integer formatting when exact
/// (so `420.0` prints as the paper's `420`).
pub fn render_measure(x: f64) -> Symbol {
    if x.fract() == 0.0 && x.abs() < 1e15 {
        Symbol::value(&format!("{}", x as i64))
    } else {
        Symbol::value(&format!("{x}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregates() {
        let v = [1.0, 2.0, 3.0];
        assert_eq!(Agg::Sum.apply(&v), Some(6.0));
        assert_eq!(Agg::Count.apply(&v), Some(3.0));
        assert_eq!(Agg::Min.apply(&v), Some(1.0));
        assert_eq!(Agg::Max.apply(&v), Some(3.0));
        assert_eq!(Agg::Avg.apply(&v), Some(2.0));
    }

    #[test]
    fn empty_aggregates() {
        assert_eq!(Agg::Sum.apply(&[]), None);
        assert_eq!(Agg::Count.apply(&[]), Some(0.0));
    }

    #[test]
    fn parse_and_render_round_trip() {
        let ctx = Symbol::name("Sold");
        assert_eq!(parse_measure(Symbol::value("50"), ctx).unwrap(), Some(50.0));
        assert_eq!(parse_measure(Symbol::Null, ctx).unwrap(), None);
        assert!(parse_measure(Symbol::value("nuts"), ctx).is_err());
        assert_eq!(render_measure(420.0), Symbol::value("420"));
        assert_eq!(render_measure(2.5), Symbol::value("2.5"));
    }
}
