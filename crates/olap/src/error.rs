//! Errors for the OLAP layer.

use tabular_core::Symbol;

/// OLAP-layer errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OlapError {
    /// A cell that should hold a number did not parse.
    NotNumeric {
        /// The offending symbol.
        symbol: Symbol,
        /// Context (measure/attribute name).
        context: Symbol,
    },
    /// A referenced attribute is missing from the table.
    MissingAttribute(Symbol),
    /// A referenced dimension is missing from the cube.
    MissingDimension(Symbol),
    /// A dimension member is unknown.
    MissingMember {
        /// Dimension.
        dim: Symbol,
        /// Member.
        member: Symbol,
    },
    /// Two facts landed in the same cube cell without an aggregate to
    /// combine them.
    DuplicateCell(Vec<Symbol>),
    /// The cube has the wrong dimensionality for the requested view.
    BadDimensionality {
        /// Expected number of dimensions.
        expected: usize,
        /// Actual.
        got: usize,
    },
    /// Error from running a tabular algebra program.
    Tabular(tabular_algebra::AlgebraError),
}

impl std::fmt::Display for OlapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OlapError::NotNumeric { symbol, context } => {
                write!(f, "{symbol} is not numeric (in {context})")
            }
            OlapError::MissingAttribute(a) => write!(f, "no attribute {a}"),
            OlapError::MissingDimension(d) => write!(f, "no dimension {d}"),
            OlapError::MissingMember { dim, member } => {
                write!(f, "dimension {dim} has no member {member}")
            }
            OlapError::DuplicateCell(key) => write!(f, "duplicate facts for cell {key:?}"),
            OlapError::BadDimensionality { expected, got } => {
                write!(f, "expected {expected} dimensions, got {got}")
            }
            OlapError::Tabular(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for OlapError {}

impl From<tabular_algebra::AlgebraError> for OlapError {
    fn from(e: tabular_algebra::AlgebraError) -> OlapError {
        OlapError::Tabular(e)
    }
}

/// Result alias.
pub type Result<T> = std::result::Result<T, OlapError>;
