//! Classification — the second future-work OLAP operation the paper
//! announces (§5): mapping a measure into named classes (binning), either
//! by explicit numeric ranges or by quantiles, producing a new attribute
//! usable as a grouping/pivot dimension.

use crate::agg::parse_measure;
use crate::error::{OlapError, Result};
use tabular_core::{Symbol, Table};

/// A classification scheme for a numeric attribute.
#[derive(Clone, Debug)]
pub struct Classifier {
    /// Ordered class boundaries: a value `v` falls in class `i` where `i`
    /// is the first index with `v < bounds[i]`, or the last class if none.
    pub bounds: Vec<f64>,
    /// Class labels; `labels.len() == bounds.len() + 1`.
    pub labels: Vec<Symbol>,
}

impl Classifier {
    /// Explicit ranges: `bounds = [50, 100]`, `labels = [low, mid, high]`
    /// classifies `v < 50` as `low`, `50 ≤ v < 100` as `mid`, the rest as
    /// `high`.
    pub fn ranges(bounds: Vec<f64>, labels: &[&str]) -> Classifier {
        assert_eq!(labels.len(), bounds.len() + 1, "need one label per class");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "bounds must be strictly increasing"
        );
        Classifier {
            bounds,
            labels: labels.iter().map(|l| Symbol::value(l)).collect(),
        }
    }

    /// Equi-depth classes: boundaries at the `k`-quantiles of the observed
    /// values of `attr` in `t`.
    pub fn quantiles(t: &Table, attr: Symbol, k: usize, labels: &[&str]) -> Result<Classifier> {
        assert_eq!(labels.len(), k, "need one label per class");
        assert!(k >= 1);
        let col = *t
            .cols_named(attr)
            .first()
            .ok_or(OlapError::MissingAttribute(attr))?;
        let mut vals = Vec::new();
        for i in 1..=t.height() {
            if let Some(v) = parse_measure(t.get(i, col), attr)? {
                vals.push(v);
            }
        }
        vals.sort_by(f64::total_cmp);
        let bounds = (1..k)
            .map(|q| {
                let pos = q * vals.len() / k;
                vals.get(pos).copied().unwrap_or(f64::INFINITY)
            })
            .collect();
        Ok(Classifier {
            bounds,
            labels: labels.iter().map(|l| Symbol::value(l)).collect(),
        })
    }

    /// The class label of a value.
    pub fn classify(&self, v: f64) -> Symbol {
        let i = self
            .bounds
            .iter()
            .position(|&b| v < b)
            .unwrap_or(self.bounds.len());
        self.labels[i]
    }
}

/// Append a classification column `out_attr` to a relational fact table,
/// classifying the numeric attribute `attr`; ⊥ measures classify to ⊥.
pub fn classify_table(
    t: &Table,
    attr: Symbol,
    classifier: &Classifier,
    out_attr: Symbol,
) -> Result<Table> {
    let col = *t
        .cols_named(attr)
        .first()
        .ok_or(OlapError::MissingAttribute(attr))?;
    let mut out = t.clone();
    let mut new_col = Vec::with_capacity(t.height() + 1);
    new_col.push(out_attr);
    for i in 1..=t.height() {
        new_col.push(match parse_measure(t.get(i, col), attr)? {
            Some(v) => classifier.classify(v),
            None => Symbol::Null,
        });
    }
    out.push_col(new_col);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tabular_core::fixtures;

    fn nm(s: &str) -> Symbol {
        Symbol::name(s)
    }

    #[test]
    fn range_classification() {
        let c = Classifier::ranges(vec![50.0, 65.0], &["low", "mid", "high"]);
        assert_eq!(c.classify(40.0), Symbol::value("low"));
        assert_eq!(c.classify(50.0), Symbol::value("mid"));
        assert_eq!(c.classify(64.9), Symbol::value("mid"));
        assert_eq!(c.classify(70.0), Symbol::value("high"));
    }

    #[test]
    fn classify_sales() {
        let c = Classifier::ranges(vec![50.0, 65.0], &["low", "mid", "high"]);
        let out = classify_table(&fixtures::sales_relation(), nm("Sold"), &c, nm("Band")).unwrap();
        assert_eq!(out.width(), 4);
        // bolts east 70 → high.
        let i = (1..=out.height())
            .find(|&i| out.get(i, 3) == Symbol::value("70"))
            .unwrap();
        assert_eq!(out.get(i, 4), Symbol::value("high"));
        // nuts south 40 → low.
        let j = (1..=out.height())
            .find(|&i| out.get(i, 3) == Symbol::value("40"))
            .unwrap();
        assert_eq!(out.get(j, 4), Symbol::value("low"));
    }

    #[test]
    fn quantile_classification_is_balanced() {
        let rel = fixtures::make_sales_relation(20, 10);
        let c = Classifier::quantiles(&rel, nm("Sold"), 4, &["q1", "q2", "q3", "q4"]).unwrap();
        let out = classify_table(&rel, nm("Sold"), &c, nm("Q")).unwrap();
        let mut counts = [0usize; 4];
        for i in 1..=out.height() {
            let label = out.get(i, 4);
            let k = ["q1", "q2", "q3", "q4"]
                .iter()
                .position(|&l| label == Symbol::value(l))
                .unwrap();
            counts[k] += 1;
        }
        let total: usize = counts.iter().sum();
        assert_eq!(total, rel.height());
        // Each class holds a reasonable share (quantiles of discrete data
        // are never perfectly even).
        for &c in &counts {
            assert!(c > total / 10, "unbalanced classes {counts:?}");
        }
    }

    #[test]
    fn classified_attribute_pivots() {
        // Classification composes with pivot: classify then cross-tab by
        // band.
        use crate::pivot::pivot;
        let c = Classifier::ranges(vec![50.0, 65.0], &["low", "mid", "high"]);
        let classified =
            classify_table(&fixtures::sales_relation(), nm("Sold"), &c, nm("Band")).unwrap();
        let cross = pivot(
            &classified,
            nm("Band"),
            nm("Sold"),
            &tabular_algebra::EvalLimits::default(),
        )
        .unwrap();
        // Header row of bands exists.
        assert_eq!(cross.get(1, 0), nm("Band"));
    }

    #[test]
    fn null_measures_stay_null() {
        let t = Table::from_grid(&[&["R", "A", "M"], &["_", "x", "_"]]).unwrap();
        let c = Classifier::ranges(vec![1.0], &["lo", "hi"]);
        let out = classify_table(&t, nm("M"), &c, nm("C")).unwrap();
        assert!(out.get(1, 3).is_null());
    }
}
