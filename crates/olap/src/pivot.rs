//! Pivot and unpivot, *as tabular algebra programs* — §4.3's claim made
//! concrete: "tabular algebra can be used as a fundamental querying and
//! restructuring language for OLAP technology".
//!
//! * [`pivot_program`] turns a relational fact table into a cross-tab
//!   (`SalesInfo1` → bold `SalesInfo2`) with the exact operation chain the
//!   paper walks through: `GROUP by C on V`, `CLEAN-UP by rest on ⊥`,
//!   `PURGE on V by C`.
//! * [`unpivot_program`] is the inverse (`SalesInfo2` → `SalesInfo1`):
//!   `MERGE on V by C`, then the paper's ⊥-row elimination "simulated
//!   using projection, transposition, and difference", then duplicate
//!   elimination.
//!
//! A hand-coded [`crate::baseline`] implements the same two mappings
//! directly; the benchmark harness compares them to quantify the cost of
//! the algebraic generality.

use crate::error::Result;
use tabular_algebra::param::Item;
use tabular_algebra::{derived::Emitter, Budget, EvalLimits, OpKind, Param, Program};
use tabular_core::{Database, Symbol, SymbolSet, Table};

fn param_of(syms: &[Symbol]) -> Param {
    Param {
        positive: syms.iter().map(|&s| Item::Sym(s)).collect(),
        negative: vec![],
    }
}

/// The TA program pivoting table `src`: one cross-tab column per distinct
/// value under `col_attr`, cell values from `val_attr`, rows keyed by the
/// remaining attributes `keys`. The result is named `target`.
pub fn pivot_program(
    src: Symbol,
    col_attr: Symbol,
    val_attr: Symbol,
    keys: &[Symbol],
    target: Symbol,
) -> Program {
    let mut e = Emitter::new();
    let g = e.fresh();
    e.assign(
        g,
        OpKind::Group {
            by: Param::sym(col_attr),
            on: Param::sym(val_attr),
        },
        &[src],
    );
    let c = e.fresh();
    e.assign(
        c,
        OpKind::CleanUp {
            by: param_of(keys),
            on: Param::null(),
        },
        &[g],
    );
    e.assign(
        target,
        OpKind::Purge {
            on: Param::sym(val_attr),
            by: Param::sym(col_attr),
        },
        &[c],
    );
    e.into_program()
}

/// The TA program unpivoting a cross-tab `src` (header rows named by
/// `col_attr`, data columns named `val_attr`) back into a relational
/// table named `target`:
///
/// 1. `MERGE on val by col` (Figure 5);
/// 2. remove the rows whose `val` entry is ⊥, via the paper's
///    projection + union + difference derivation: a row with ⊥ under
///    `val` mutually subsumes its own projection padded back with an
///    empty `val` column, and tabular difference removes exactly those;
/// 3. `CLEAN-UP by * on ⊥` to eliminate duplicates introduced by
///    merging repeated columns.
pub fn unpivot_program(src: Symbol, val_attr: Symbol, col_attr: Symbol, target: Symbol) -> Program {
    let mut e = Emitter::new();
    let m = e.fresh();
    e.assign(
        m,
        OpKind::Merge {
            on: Param::sym(val_attr),
            by: Param::sym(col_attr),
        },
        &[src],
    );
    // ⊥-row elimination: U = PROJECT[* \ val](M) ∪ (empty val column);
    // rows of M that are ⊥ under val mutually subsume a row of U.
    let proj = e.fresh();
    e.assign(
        proj,
        OpKind::Project {
            attrs: Param::star().minus(Param::sym(val_attr)),
        },
        &[m],
    );
    let only_val = e.fresh();
    e.assign(
        only_val,
        OpKind::Project {
            attrs: Param::sym(val_attr),
        },
        &[m],
    );
    let empty_val = e.fresh();
    e.assign(empty_val, OpKind::Difference, &[only_val, only_val]);
    let padded = e.fresh();
    e.assign(padded, OpKind::Union, &[proj, empty_val]);
    let pruned = e.fresh();
    e.assign(pruned, OpKind::Difference, &[m, padded]);
    e.assign(
        target,
        OpKind::CleanUp {
            by: Param::star(),
            on: Param::null(),
        },
        &[pruned],
    );
    e.into_program()
}

/// Run [`pivot_program`] on a single table, returning the cross-tab.
pub fn pivot(t: &Table, col_attr: Symbol, val_attr: Symbol, limits: &EvalLimits) -> Result<Table> {
    pivot_governed(t, col_attr, val_attr, &Budget::from_limits(limits))
}

/// Like [`pivot`], but governed by a [`Budget`]: the underlying TA run
/// honors the budget's deadline, run-cell allowance, and cancellation
/// token (a trip surfaces as the algebra's `BudgetExceeded` error).
pub fn pivot_governed(
    t: &Table,
    col_attr: Symbol,
    val_attr: Symbol,
    budget: &Budget,
) -> Result<Table> {
    let keys: Vec<Symbol> = {
        let drop: SymbolSet = [col_attr, val_attr].into_iter().collect();
        t.scheme().minus(&drop).iter().collect()
    };
    let target = Symbol::fresh_name();
    // Run the full cost-based planner pipeline: the GROUP → CLEAN-UP →
    // PURGE chain fuses into the single-pass restructuring kernel, and
    // dead-assignment elimination protects the reserved `target` name
    // because it is the program's final assignment.
    let p = pivot_program(t.name(), col_attr, val_attr, &keys, target);
    let db = Database::from_tables([t.clone()]);
    let out = tabular_algebra::run_planned_governed(&p, &db, budget)?;
    let mut result = out
        .table(target)
        .expect("pivot program produces its target")
        .clone();
    result.set_name(t.name());
    Ok(result)
}

/// Run [`unpivot_program`] on a single table, returning the relational
/// form.
pub fn unpivot(
    t: &Table,
    val_attr: Symbol,
    col_attr: Symbol,
    limits: &EvalLimits,
) -> Result<Table> {
    unpivot_governed(t, val_attr, col_attr, &Budget::from_limits(limits))
}

/// Like [`unpivot`], but governed by a [`Budget`] (see
/// [`pivot_governed`]).
pub fn unpivot_governed(
    t: &Table,
    val_attr: Symbol,
    col_attr: Symbol,
    budget: &Budget,
) -> Result<Table> {
    let target = Symbol::fresh_name();
    let p = unpivot_program(t.name(), val_attr, col_attr, target);
    let db = Database::from_tables([t.clone()]);
    let out = tabular_algebra::run_governed(&p, &db, budget)?;
    let mut result = out
        .table(target)
        .expect("unpivot program produces its target")
        .clone();
    result.set_name(t.name());
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tabular_core::fixtures;

    fn nm(s: &str) -> Symbol {
        Symbol::name(s)
    }

    fn limits() -> EvalLimits {
        EvalLimits::default()
    }

    /// Regression for the PR 6 workaround: the pivot program's final
    /// assignment targets a *reserved* name, and the full optimizer
    /// pipeline used to dead-eliminate it (pivot had to call
    /// `fuse_restructure` directly). The planner's dead-code rule now
    /// protects the program's final assignment, so the full pipeline
    /// keeps the target and still fuses the restructuring chain.
    #[test]
    fn full_pipeline_preserves_reserved_pivot_target() {
        let t = fixtures::sales_relation();
        let target = Symbol::fresh_name();
        let p = pivot_program(t.name(), nm("Region"), nm("Sold"), &[nm("Part")], target);
        let opt = tabular_algebra::optimize(&p);
        assert!(
            !opt.statements.is_empty(),
            "optimizer must not drop the reserved-target program"
        );
        let tabular_algebra::program::Statement::Assign(last) = opt.statements.last().unwrap()
        else {
            panic!("assignment expected");
        };
        assert_eq!(last.target, tabular_algebra::Param::sym(target));
        assert!(
            opt.statements.iter().any(|s| matches!(
                s,
                tabular_algebra::program::Statement::Assign(a)
                    if matches!(a.op, OpKind::FusedRestructure(_))
            )),
            "restructuring chain still fuses: {opt:?}"
        );
    }

    #[test]
    fn pivot_produces_sales_info2() {
        let out = pivot(
            &fixtures::sales_relation(),
            nm("Region"),
            nm("Sold"),
            &limits(),
        )
        .unwrap();
        let info2 = fixtures::sales_info2();
        let expected = info2.table_str("Sales").unwrap();
        assert!(out.equiv(expected), "pivot:\n{out}\nexpected:\n{expected}");
    }

    #[test]
    fn unpivot_recovers_sales_info1() {
        let info2 = fixtures::sales_info2();
        let out = unpivot(
            info2.table_str("Sales").unwrap(),
            nm("Sold"),
            nm("Region"),
            &limits(),
        )
        .unwrap();
        // Same tuples as the base relation; column order is
        // (Part, Region, Sold) here as in Figure 5.
        let rel = fixtures::sales_relation();
        assert_eq!(out.height(), rel.height());
        for i in 1..=rel.height() {
            let want = [rel.get(i, 1), rel.get(i, 2), rel.get(i, 3)];
            assert!(
                (1..=out.height()).any(|k| out.data_row(k) == want),
                "missing tuple {want:?}\n{out}"
            );
        }
    }

    #[test]
    fn pivot_then_unpivot_is_identity_on_tuples() {
        for (parts, regions) in [(3, 4), (10, 7), (25, 16)] {
            let rel = fixtures::make_sales_relation(parts, regions);
            let pivoted = pivot(&rel, nm("Region"), nm("Sold"), &limits()).unwrap();
            assert_eq!(pivoted.height(), parts + 1);
            let back = unpivot(&pivoted, nm("Sold"), nm("Region"), &limits()).unwrap();
            assert_eq!(back.height(), rel.height(), "{parts}×{regions}");
        }
    }

    #[test]
    fn unpivot_matches_figure5_after_null_removal() {
        // Figure 5 minus its ⊥ rows is exactly the unpivot result.
        let fig5 = fixtures::figure5_merged();
        let nonnull = fig5.retain_rows(|i| !fig5.get(i, 3).is_null());
        let info2 = fixtures::sales_info2();
        let out = unpivot(
            info2.table_str("Sales").unwrap(),
            nm("Sold"),
            nm("Region"),
            &limits(),
        )
        .unwrap();
        assert!(out.equiv(&nonnull));
    }
}
