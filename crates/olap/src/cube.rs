//! An n-dimensional cube — the OLAP data model of §4.3 ("the OLAP model
//! allows data to be stored in the form of (n-dimensional) matrices"),
//! with conversions to and from tabular representations: a 2-dimensional
//! cube *is* a table with data in its attribute positions (`SalesInfo3`),
//! and an n-dimensional cube flattens to a set of same-named tables, one
//! per combination of the remaining dimensions (`SalesInfo4`).

use crate::agg::{parse_measure, render_measure, Agg};
use crate::error::{OlapError, Result};
use tabular_core::{Database, Symbol, Table};

/// A dimension: a name and an ordered member list.
#[derive(Clone, PartialEq, Debug)]
pub struct Dimension {
    /// Dimension name (e.g. `Part`).
    pub name: Symbol,
    /// Members in display order (e.g. `nuts`, `screws`, `bolts`).
    pub members: Vec<Symbol>,
}

/// A dense n-dimensional cube of optional numeric measures.
#[derive(Clone, PartialEq, Debug)]
pub struct Cube {
    /// Cube (and measure) name.
    pub name: Symbol,
    dims: Vec<Dimension>,
    data: Vec<Option<f64>>,
}

impl Cube {
    /// An empty cube over the given dimensions.
    pub fn new(name: Symbol, dims: Vec<Dimension>) -> Cube {
        let size = dims.iter().map(|d| d.members.len()).product();
        Cube {
            name,
            dims,
            data: vec![None; size],
        }
    }

    /// The dimensions.
    pub fn dims(&self) -> &[Dimension] {
        &self.dims
    }

    /// Number of dimensions.
    pub fn arity(&self) -> usize {
        self.dims.len()
    }

    /// Total number of cells.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the cube has no cells.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    fn offset(&self, idx: &[usize]) -> usize {
        debug_assert_eq!(idx.len(), self.dims.len());
        let mut off = 0;
        for (i, d) in idx.iter().zip(&self.dims) {
            debug_assert!(*i < d.members.len());
            off = off * d.members.len() + i;
        }
        off
    }

    /// Read a cell by member indices.
    pub fn get(&self, idx: &[usize]) -> Option<f64> {
        self.data[self.offset(idx)]
    }

    /// Write a cell by member indices.
    pub fn set(&mut self, idx: &[usize], v: Option<f64>) {
        let off = self.offset(idx);
        self.data[off] = v;
    }

    /// Index of a member within a dimension.
    pub fn member_index(&self, dim: usize, member: Symbol) -> Result<usize> {
        self.dims[dim]
            .members
            .iter()
            .position(|&m| m == member)
            .ok_or(OlapError::MissingMember {
                dim: self.dims[dim].name,
                member,
            })
    }

    // ------------------------------------------------------------------
    // Construction from relational data
    // ------------------------------------------------------------------

    /// Build a cube from a relational-shaped fact table: `dims` name the
    /// dimension attributes (members in first-appearance order), `measure`
    /// the numeric attribute, `agg` combines multiple facts per cell.
    pub fn from_table(t: &Table, dims: &[Symbol], measure: Symbol, agg: Agg) -> Result<Cube> {
        let dim_cols: Vec<usize> = dims
            .iter()
            .map(|&d| {
                t.cols_named(d)
                    .first()
                    .copied()
                    .ok_or(OlapError::MissingAttribute(d))
            })
            .collect::<Result<_>>()?;
        let measure_col = *t
            .cols_named(measure)
            .first()
            .ok_or(OlapError::MissingAttribute(measure))?;

        let mut dimensions: Vec<Dimension> = dims
            .iter()
            .map(|&d| Dimension {
                name: d,
                members: Vec::new(),
            })
            .collect();
        for i in 1..=t.height() {
            for (d, &j) in dimensions.iter_mut().zip(&dim_cols) {
                let m = t.get(i, j);
                if !d.members.contains(&m) {
                    d.members.push(m);
                }
            }
        }

        let mut cells: Vec<Vec<f64>> = vec![
            Vec::new();
            dimensions
                .iter()
                .map(|d| d.members.len())
                .product::<usize>()
        ];
        let cube = Cube::new(t.name(), dimensions);
        let mut cube = cube;
        for i in 1..=t.height() {
            let idx: Vec<usize> = dim_cols
                .iter()
                .enumerate()
                .map(|(d, &j)| cube.member_index(d, t.get(i, j)))
                .collect::<Result<_>>()?;
            if let Some(v) = parse_measure(t.get(i, measure_col), measure)? {
                cells[cube.offset(&idx)].push(v);
            }
        }
        for (off, vals) in cells.into_iter().enumerate() {
            cube.data[off] = agg.apply(&vals);
        }
        Ok(cube)
    }

    // ------------------------------------------------------------------
    // OLAP operations
    // ------------------------------------------------------------------

    /// Roll up (aggregate away) dimension `dim` with `agg`, reducing the
    /// arity by one.
    pub fn rollup(&self, dim: usize, agg: Agg) -> Cube {
        assert!(dim < self.dims.len());
        let mut dims = self.dims.clone();
        dims.remove(dim);
        let mut out = Cube::new(self.name, dims);
        let mut idx = vec![0usize; out.dims.len()];
        loop {
            // Gather along the removed dimension.
            let mut vals = Vec::new();
            for m in 0..self.dims[dim].members.len() {
                let mut full = idx.clone();
                full.insert(dim, m);
                if let Some(v) = self.get(&full) {
                    vals.push(v);
                }
            }
            let off = out.offset(&idx);
            out.data[off] = agg.apply(&vals);
            // Odometer.
            let mut d = out.dims.len();
            loop {
                if d == 0 {
                    return out;
                }
                d -= 1;
                idx[d] += 1;
                if idx[d] < out.dims[d].members.len() {
                    break;
                }
                idx[d] = 0;
            }
            if out.dims.is_empty() {
                return out;
            }
        }
    }

    /// The grand total: every dimension rolled up.
    pub fn grand_total(&self, agg: Agg) -> Option<f64> {
        let mut c = self.clone();
        while c.arity() > 0 {
            c = c.rollup(0, agg);
        }
        c.data[0]
    }

    /// Slice: fix dimension `dim` to `member`, reducing arity by one.
    pub fn slice(&self, dim: usize, member: Symbol) -> Result<Cube> {
        let m = self.member_index(dim, member)?;
        let mut dims = self.dims.clone();
        dims.remove(dim);
        let mut out = Cube::new(self.name, dims);
        let total = out.data.len();
        let mut idx = vec![0usize; out.dims.len()];
        for _ in 0..total {
            let mut full = idx.clone();
            full.insert(dim, m);
            let off = out.offset(&idx);
            out.data[off] = self.get(&full);
            let mut d = out.dims.len();
            while d > 0 {
                d -= 1;
                idx[d] += 1;
                if idx[d] < out.dims[d].members.len() {
                    break;
                }
                idx[d] = 0;
            }
        }
        Ok(out)
    }

    /// Dice: restrict a dimension to a subset of members (kept in the
    /// given order).
    pub fn dice(&self, dim: usize, members: &[Symbol]) -> Result<Cube> {
        let keep: Vec<usize> = members
            .iter()
            .map(|&m| self.member_index(dim, m))
            .collect::<Result<_>>()?;
        let mut dims = self.dims.clone();
        dims[dim].members = members.to_vec();
        let mut out = Cube::new(self.name, dims);
        let total = out.data.len();
        let mut idx = vec![0usize; out.dims.len()];
        for _ in 0..total {
            let mut src = idx.clone();
            src[dim] = keep[idx[dim]];
            let off = out.offset(&idx);
            out.data[off] = self.get(&src);
            let mut d = out.dims.len();
            while d > 0 {
                d -= 1;
                idx[d] += 1;
                if idx[d] < out.dims[d].members.len() {
                    break;
                }
                idx[d] = 0;
            }
        }
        Ok(out)
    }

    // ------------------------------------------------------------------
    // Tabular views (§4.3: "the natural fit between (2- or n-dimensional)
    // tables and OLAP matrices")
    // ------------------------------------------------------------------

    /// The `SalesInfo3` view of a 2-dimensional cube: dimension 0's
    /// members become row attributes, dimension 1's members column
    /// attributes — row and column names are *data*.
    pub fn to_table_2d(&self) -> Result<Table> {
        if self.arity() != 2 {
            return Err(OlapError::BadDimensionality {
                expected: 2,
                got: self.arity(),
            });
        }
        let (rows, cols) = (&self.dims[0].members, &self.dims[1].members);
        let mut t = Table::new(self.name, rows.len(), cols.len());
        for (j, &c) in cols.iter().enumerate() {
            t.set(0, j + 1, c);
        }
        for (i, &r) in rows.iter().enumerate() {
            t.set(i + 1, 0, r);
            for j in 0..cols.len() {
                let cell = self.get(&[i, j]).map_or(Symbol::Null, render_measure);
                t.set(i + 1, j + 1, cell);
            }
        }
        Ok(t)
    }

    /// Read a 2-dimensional cube back from a `SalesInfo3`-style table.
    pub fn from_table_2d(t: &Table, row_dim: Symbol, col_dim: Symbol) -> Result<Cube> {
        let dims = vec![
            Dimension {
                name: row_dim,
                members: t.row_attrs(),
            },
            Dimension {
                name: col_dim,
                members: t.col_attrs().to_vec(),
            },
        ];
        let mut cube = Cube::new(t.name(), dims);
        for i in 1..=t.height() {
            for j in 1..=t.width() {
                let v = parse_measure(t.get(i, j), col_dim)?;
                cube.set(&[i - 1, j - 1], v);
            }
        }
        Ok(cube)
    }

    /// The `SalesInfo4` view of an n-dimensional cube (n ≥ 2): one table
    /// per member combination of dimensions `2..n` — all sharing the cube
    /// name, each carrying header rows naming the fixed members, exactly
    /// like the paper's split representation generalized to cubes.
    pub fn to_split_database(&self) -> Result<Database> {
        if self.arity() < 2 {
            return Err(OlapError::BadDimensionality {
                expected: 2,
                got: self.arity(),
            });
        }
        let mut out = Database::new();
        let rest: Vec<&Dimension> = self.dims[2..].iter().collect();
        let mut combo = vec![0usize; rest.len()];
        loop {
            // Slice down to 2 dimensions for this combination.
            let mut slice = self.clone();
            for (d, &m) in combo.iter().enumerate().rev() {
                slice = slice.slice(2 + d, rest[d].members[m])?;
            }
            let mut t = slice.to_table_2d()?;
            // Header rows naming the fixed members (cf. SalesInfo4's
            // `Region | east | east ...` row).
            for (d, &m) in combo.iter().enumerate() {
                let member = rest[d].members[m];
                let mut row = vec![member; t.width() + 1];
                row[0] = rest[d].name;
                t.push_row(row);
            }
            out.insert(t);
            // Odometer over the remaining dimensions.
            if rest.is_empty() {
                break;
            }
            let mut d = rest.len();
            loop {
                if d == 0 {
                    return Ok(out);
                }
                d -= 1;
                combo[d] += 1;
                if combo[d] < rest[d].members.len() {
                    break;
                }
                combo[d] = 0;
            }
        }
        Ok(out)
    }

    /// The relational (`SalesInfo1`) view: one row per non-⊥ cell.
    pub fn to_relation_table(&self, measure: Symbol) -> Table {
        let attrs: Vec<Symbol> = self
            .dims
            .iter()
            .map(|d| d.name)
            .chain(std::iter::once(measure))
            .collect();
        let mut rows: Vec<Vec<Symbol>> = Vec::new();
        let mut idx = vec![0usize; self.dims.len()];
        for _ in 0..self.data.len() {
            if let Some(v) = self.get(&idx) {
                let mut row: Vec<Symbol> = idx
                    .iter()
                    .zip(&self.dims)
                    .map(|(&i, d)| d.members[i])
                    .collect();
                row.push(render_measure(v));
                rows.push(row);
            }
            let mut d = self.dims.len();
            while d > 0 {
                d -= 1;
                idx[d] += 1;
                if idx[d] < self.dims[d].members.len() {
                    break;
                }
                idx[d] = 0;
            }
        }
        Table::relational_syms(self.name, &attrs, &rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tabular_core::fixtures;

    fn sales_cube() -> Cube {
        Cube::from_table(
            &fixtures::sales_relation(),
            &[Symbol::name("Region"), Symbol::name("Part")],
            Symbol::name("Sold"),
            Agg::Sum,
        )
        .unwrap()
    }

    #[test]
    fn cube_from_sales_relation() {
        let c = sales_cube();
        assert_eq!(c.arity(), 2);
        assert_eq!(c.dims()[0].members.len(), 4); // regions
        assert_eq!(c.dims()[1].members.len(), 3); // parts
        let east = c.member_index(0, Symbol::value("east")).unwrap();
        let nuts = c.member_index(1, Symbol::value("nuts")).unwrap();
        assert_eq!(c.get(&[east, nuts]), Some(50.0));
        let north = c.member_index(0, Symbol::value("north")).unwrap();
        assert_eq!(c.get(&[north, nuts]), None);
    }

    #[test]
    fn two_dim_cube_is_sales_info3() {
        // The bold SalesInfo3 table of Figure 1, cell for cell.
        let c = sales_cube();
        let t = c.to_table_2d().unwrap();
        let info3 = fixtures::sales_info3();
        let expected = info3.table_str("Sales").unwrap();
        assert!(
            t.equiv(expected),
            "cube view differs from SalesInfo3:\n{t}\nvs\n{expected}"
        );
    }

    #[test]
    fn table_2d_round_trips() {
        let c = sales_cube();
        let t = c.to_table_2d().unwrap();
        let back = Cube::from_table_2d(&t, Symbol::name("Region"), Symbol::name("Part")).unwrap();
        assert_eq!(back, c);
    }

    #[test]
    fn rollup_matches_paper_totals() {
        let c = sales_cube();
        // Roll up parts → per-region totals (TotalRegionSales).
        let by_region = c.rollup(1, Agg::Sum);
        let east = by_region.member_index(0, Symbol::value("east")).unwrap();
        assert_eq!(by_region.get(&[east]), Some(120.0));
        // Roll up regions → per-part totals (TotalPartSales).
        let by_part = c.rollup(0, Agg::Sum);
        let screws = by_part.member_index(0, Symbol::value("screws")).unwrap();
        assert_eq!(by_part.get(&[screws]), Some(160.0));
        // Grand total.
        assert_eq!(c.grand_total(Agg::Sum), Some(420.0));
    }

    #[test]
    fn slice_and_dice() {
        let c = sales_cube();
        let east = c.slice(0, Symbol::value("east")).unwrap();
        assert_eq!(east.arity(), 1);
        let nuts = east.member_index(0, Symbol::value("nuts")).unwrap();
        assert_eq!(east.get(&[nuts]), Some(50.0));

        let diced = c
            .dice(1, &[Symbol::value("bolts"), Symbol::value("nuts")])
            .unwrap();
        assert_eq!(diced.dims()[1].members.len(), 2);
        let e = diced.member_index(0, Symbol::value("east")).unwrap();
        assert_eq!(diced.get(&[e, 0]), Some(70.0)); // bolts first now
    }

    #[test]
    fn relation_view_round_trips_content() {
        let c = sales_cube();
        let t = c.to_relation_table(Symbol::name("Sold"));
        assert_eq!(t.height(), 8);
        let back = Cube::from_table(
            &t,
            &[Symbol::name("Region"), Symbol::name("Part")],
            Symbol::name("Sold"),
            Agg::Sum,
        )
        .unwrap();
        assert_eq!(back.grand_total(Agg::Sum), Some(420.0));
    }

    #[test]
    fn three_dim_cube_splits_like_sales_info4() {
        // Add a Year dimension with one member to the sales data.
        let mut t = fixtures::sales_relation();
        t.push_col(vec![
            Symbol::name("Year"),
            Symbol::value("96"),
            Symbol::value("96"),
            Symbol::value("96"),
            Symbol::value("96"),
            Symbol::value("96"),
            Symbol::value("96"),
            Symbol::value("96"),
            Symbol::value("96"),
        ]);
        let c = Cube::from_table(
            &t,
            &[
                Symbol::name("Part"),
                Symbol::name("Region"),
                Symbol::name("Year"),
            ],
            Symbol::name("Sold"),
            Agg::Sum,
        )
        .unwrap();
        assert_eq!(c.arity(), 3);
        let split = c.to_split_database().unwrap();
        assert_eq!(split.len(), 1); // one Year member → one table
        let tab = &split.tables()[0];
        // The Year header row names the fixed member.
        let last = tab.height();
        assert_eq!(tab.get(last, 0), Symbol::name("Year"));
        assert_eq!(tab.get(last, 1), Symbol::value("96"));
    }

    #[test]
    fn duplicate_facts_aggregate() {
        let t = Table::relational("R", &["D", "M"], &[&["x", "1"], &["x", "2"], &["y", "5"]]);
        let c = Cube::from_table(&t, &[Symbol::name("D")], Symbol::name("M"), Agg::Sum).unwrap();
        let x = c.member_index(0, Symbol::value("x")).unwrap();
        assert_eq!(c.get(&[x]), Some(3.0));
        let cmax = Cube::from_table(&t, &[Symbol::name("D")], Symbol::name("M"), Agg::Max).unwrap();
        assert_eq!(cmax.get(&[x]), Some(2.0));
    }

    #[test]
    fn missing_attribute_errors() {
        let t = fixtures::sales_relation();
        assert!(matches!(
            Cube::from_table(&t, &[Symbol::name("Nope")], Symbol::name("Sold"), Agg::Sum),
            Err(OlapError::MissingAttribute(_))
        ));
        assert!(matches!(
            Cube::from_table(&t, &[Symbol::name("Part")], Symbol::name("Nope"), Agg::Sum),
            Err(OlapError::MissingAttribute(_))
        ));
    }
}
