//! Hand-coded pivot/unpivot baselines.
//!
//! The paper's claim for §4.3 is *expressiveness*: the tabular algebra can
//! serve as the restructuring language for OLAP. These purpose-built
//! implementations compute the same mappings directly on the matrix
//! representation; the `olap_pivot` benchmark compares them against the
//! algebraic [`crate::pivot`] programs to quantify what the generality
//! costs (ablation, DESIGN.md §6).

use crate::error::{OlapError, Result};
use tabular_core::{Symbol, Table};

/// Direct pivot: cross-tab `t` with one column per distinct `col_attr`
/// value, cells from `val_attr`, one row per distinct combination of the
/// remaining attributes. Produces the same shape as
/// [`crate::pivot::pivot`] (header row named by `col_attr`, all cross-tab
/// columns named `val_attr`).
pub fn pivot_direct(t: &Table, col_attr: Symbol, val_attr: Symbol) -> Result<Table> {
    let col_src = *t
        .cols_named(col_attr)
        .first()
        .ok_or(OlapError::MissingAttribute(col_attr))?;
    let val_src = *t
        .cols_named(val_attr)
        .first()
        .ok_or(OlapError::MissingAttribute(val_attr))?;
    let key_cols: Vec<usize> = (1..=t.width())
        .filter(|&j| j != col_src && j != val_src)
        .collect();

    // Distinct column members and row keys, in first-appearance order.
    let mut members: Vec<Symbol> = Vec::new();
    let mut keys: Vec<Vec<Symbol>> = Vec::new();
    for i in 1..=t.height() {
        let m = t.get(i, col_src);
        if !members.contains(&m) {
            members.push(m);
        }
        let key: Vec<Symbol> = key_cols.iter().map(|&j| t.get(i, j)).collect();
        if !keys.contains(&key) {
            keys.push(key);
        }
    }

    let width = key_cols.len() + members.len();
    let mut out = Table::new(t.name(), 0, width);
    for (k, &j) in key_cols.iter().enumerate() {
        out.set(0, k + 1, t.col_attr(j));
    }
    for k in 0..members.len() {
        out.set(0, key_cols.len() + k + 1, val_attr);
    }
    // Header row naming the members.
    let mut header = vec![Symbol::Null; width + 1];
    header[0] = col_attr;
    for (k, &m) in members.iter().enumerate() {
        header[key_cols.len() + k + 1] = m;
    }
    out.push_row(header);
    // One row per key.
    let mut grid: Vec<Vec<Symbol>> = keys
        .iter()
        .map(|key| {
            let mut row = vec![Symbol::Null; width + 1];
            for (k, v) in key.iter().enumerate() {
                row[k + 1] = *v;
            }
            row
        })
        .collect();
    for i in 1..=t.height() {
        let key: Vec<Symbol> = key_cols.iter().map(|&j| t.get(i, j)).collect();
        let r = keys.iter().position(|k| *k == key).expect("key collected");
        let c = members
            .iter()
            .position(|&m| m == t.get(i, col_src))
            .expect("member collected");
        grid[r][key_cols.len() + c + 1] = t.get(i, val_src);
    }
    for row in grid {
        out.push_row(row);
    }
    Ok(out)
}

/// Direct unpivot: inverse of [`pivot_direct`] — emit one row per non-⊥
/// cross-tab cell, with the header row's member under a new `col_attr`
/// column.
pub fn unpivot_direct(t: &Table, val_attr: Symbol, col_attr: Symbol) -> Result<Table> {
    let header_row = (1..=t.height())
        .find(|&i| t.get(i, 0) == col_attr)
        .ok_or(OlapError::MissingAttribute(col_attr))?;
    let val_cols: Vec<usize> = t.cols_named(val_attr);
    if val_cols.is_empty() {
        return Err(OlapError::MissingAttribute(val_attr));
    }
    let key_cols: Vec<usize> = (1..=t.width()).filter(|j| !val_cols.contains(j)).collect();

    let attrs: Vec<Symbol> = key_cols
        .iter()
        .map(|&j| t.col_attr(j))
        .chain([col_attr, val_attr])
        .collect();
    let mut rows: Vec<Vec<Symbol>> = Vec::new();
    for i in 1..=t.height() {
        if i == header_row {
            continue;
        }
        for &j in &val_cols {
            let v = t.get(i, j);
            if v.is_null() {
                continue;
            }
            let mut row: Vec<Symbol> = key_cols.iter().map(|&k| t.get(i, k)).collect();
            row.push(t.get(header_row, j));
            row.push(v);
            if !rows.contains(&row) {
                rows.push(row);
            }
        }
    }
    Ok(Table::relational_syms(t.name(), &attrs, &rows))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pivot::{pivot, unpivot};
    use tabular_algebra::EvalLimits;
    use tabular_core::fixtures;

    fn nm(s: &str) -> Symbol {
        Symbol::name(s)
    }

    #[test]
    fn direct_pivot_matches_sales_info2() {
        let out = pivot_direct(&fixtures::sales_relation(), nm("Region"), nm("Sold")).unwrap();
        let info2 = fixtures::sales_info2();
        assert!(out.equiv(info2.table_str("Sales").unwrap()));
    }

    #[test]
    fn direct_and_algebraic_pivot_agree() {
        for (p, r) in [(4, 3), (12, 9)] {
            let rel = fixtures::make_sales_relation(p, r);
            let direct = pivot_direct(&rel, nm("Region"), nm("Sold")).unwrap();
            let algebraic = pivot(&rel, nm("Region"), nm("Sold"), &EvalLimits::default()).unwrap();
            assert!(direct.equiv(&algebraic), "{p}×{r}");
        }
    }

    #[test]
    fn direct_and_algebraic_unpivot_agree() {
        let cross = fixtures::make_sales_info2(10, 6);
        let direct = unpivot_direct(&cross, nm("Sold"), nm("Region")).unwrap();
        let algebraic = unpivot(&cross, nm("Sold"), nm("Region"), &EvalLimits::default()).unwrap();
        assert_eq!(direct.height(), algebraic.height());
        for i in 1..=direct.height() {
            let row: Vec<Symbol> = direct.data_row(i).to_vec();
            assert!(
                (1..=algebraic.height()).any(|k| {
                    let a = algebraic.data_row(k);
                    // Column order differs (keys…, col, val) vs merge
                    // order; compare as sets of the same three entries.
                    row.iter().all(|s| a.contains(s))
                }),
                "row {row:?} missing"
            );
        }
    }

    #[test]
    fn direct_round_trip() {
        let rel = fixtures::make_sales_relation(8, 5);
        let cross = pivot_direct(&rel, nm("Region"), nm("Sold")).unwrap();
        let back = unpivot_direct(&cross, nm("Sold"), nm("Region")).unwrap();
        assert_eq!(back.height(), rel.height());
    }

    #[test]
    fn unpivot_requires_header_row() {
        let rel = fixtures::sales_relation();
        assert!(matches!(
            unpivot_direct(&rel, nm("Sold"), nm("Region")),
            Err(OlapError::MissingAttribute(_))
        ));
    }
}
