//! Summarization — the paper's announced future-work OLAP operation (§5),
//! covering the *summary data* of Figure 1: per-group totals
//! (`TotalPartSales`, `TotalRegionSales`), the grand total, and the
//! absorbed `Total` rows/columns of `SalesInfo2`–`SalesInfo4`.

use crate::agg::{parse_measure, render_measure, Agg};
use crate::error::Result;
use tabular_core::{Symbol, Table};

/// Group a relational fact table by the `by` attributes and aggregate the
/// `measure` attribute — the relational summaries of `SalesInfo1`
/// (`TotalPartSales` is `summarize(sales, [Part], Sold, Sum, "TotalPartSales", "Total")`).
pub fn summarize(
    t: &Table,
    by: &[Symbol],
    measure: Symbol,
    agg: Agg,
    out_name: &str,
    out_attr: &str,
) -> Result<Table> {
    let by_cols: Vec<usize> = by
        .iter()
        .map(|&a| {
            t.cols_named(a)
                .first()
                .copied()
                .ok_or(crate::error::OlapError::MissingAttribute(a))
        })
        .collect::<Result<_>>()?;
    let measure_col = *t
        .cols_named(measure)
        .first()
        .ok_or(crate::error::OlapError::MissingAttribute(measure))?;

    let mut keys: Vec<Vec<Symbol>> = Vec::new();
    let mut groups: Vec<Vec<f64>> = Vec::new();
    for i in 1..=t.height() {
        let key: Vec<Symbol> = by_cols.iter().map(|&j| t.get(i, j)).collect();
        let slot = match keys.iter().position(|k| *k == key) {
            Some(p) => p,
            None => {
                keys.push(key);
                groups.push(Vec::new());
                keys.len() - 1
            }
        };
        if let Some(v) = parse_measure(t.get(i, measure_col), measure)? {
            groups[slot].push(v);
        }
    }

    let attrs: Vec<Symbol> = by
        .iter()
        .copied()
        .chain(std::iter::once(Symbol::name(out_attr)))
        .collect();
    let rows: Vec<Vec<Symbol>> = keys
        .into_iter()
        .zip(groups)
        .map(|(mut key, vals)| {
            key.push(agg.apply(&vals).map_or(Symbol::Null, render_measure));
            key
        })
        .collect();
    Ok(Table::relational_syms(
        Symbol::name(out_name),
        &attrs,
        &rows,
    ))
}

/// The grand total of a measure over a relational fact table — the
/// `GrandTotal` relation of `SalesInfo1`.
pub fn grand_total(t: &Table, measure: Symbol, agg: Agg) -> Result<Option<f64>> {
    let measure_col = *t
        .cols_named(measure)
        .first()
        .ok_or(crate::error::OlapError::MissingAttribute(measure))?;
    let mut vals = Vec::new();
    for i in 1..=t.height() {
        if let Some(v) = parse_measure(t.get(i, measure_col), measure)? {
            vals.push(v);
        }
    }
    Ok(agg.apply(&vals))
}

/// Absorb summary data into a cross-tab (the regular-outline extension of
/// the bold `SalesInfo2` in Figure 1): append a `Total` column (headed by
/// the cross-tab's value attribute, header entry the *name* `Total`) and a
/// `Total` row (row attribute the name `Total`), aggregating the numeric
/// cells with `agg`.
///
/// `header_rows` names the row attributes of header rows (e.g. `Region`),
/// which are excluded from the row totals; `key_attrs` names the
/// non-numeric columns (e.g. `Part`), excluded from the column totals.
pub fn add_totals(
    t: &Table,
    header_rows: &[Symbol],
    key_attrs: &[Symbol],
    agg: Agg,
) -> Result<Table> {
    let mut out = t.clone();
    // Header rows and key columns are identified on the input table; the
    // appended Total row/column never qualifies.
    let header_idx: Vec<usize> = (1..=t.height())
        .filter(|&i| header_rows.contains(&t.get(i, 0)))
        .collect();
    let key_idx: Vec<usize> = (1..=t.width())
        .filter(|&j| key_attrs.contains(&t.col_attr(j)))
        .collect();
    let is_header_row = |i: usize| header_idx.contains(&i);
    let is_key_col = |j: usize| key_idx.contains(&j);

    // Total column: per data row, aggregate its numeric cells.
    let mut col = Vec::with_capacity(out.height() + 1);
    // The new column is headed like the other value columns; if the table
    // has a single distinct non-key attribute we reuse it, else ⊥.
    let value_attrs: Vec<Symbol> = {
        let mut v: Vec<Symbol> = Vec::new();
        for j in 1..=t.width() {
            if !is_key_col(j) && !v.contains(&t.col_attr(j)) {
                v.push(t.col_attr(j));
            }
        }
        v
    };
    col.push(if value_attrs.len() == 1 {
        value_attrs[0]
    } else {
        Symbol::Null
    });
    for i in 1..=out.height() {
        if is_header_row(i) {
            col.push(Symbol::name("Total"));
            continue;
        }
        let mut vals = Vec::new();
        for j in 1..=out.width() {
            if is_key_col(j) {
                continue;
            }
            if let Some(v) = parse_measure(out.get(i, j), out.col_attr(j))? {
                vals.push(v);
            }
        }
        col.push(agg.apply(&vals).map_or(Symbol::Null, render_measure));
    }
    out.push_col(col);

    // Total row: per value column (including the new Total column),
    // aggregate its numeric data cells.
    let mut row = Vec::with_capacity(out.width() + 1);
    row.push(Symbol::name("Total"));
    for j in 1..=out.width() {
        if is_key_col(j) {
            row.push(Symbol::Null);
            continue;
        }
        let mut vals = Vec::new();
        for i in 1..=out.height() {
            if is_header_row(i) {
                continue;
            }
            if let Some(v) = parse_measure(out.get(i, j), out.col_attr(j))? {
                vals.push(v);
            }
        }
        row.push(agg.apply(&vals).map_or(Symbol::Null, render_measure));
    }
    out.push_row(row);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tabular_core::fixtures;

    fn nm(s: &str) -> Symbol {
        Symbol::name(s)
    }

    #[test]
    fn summarize_reproduces_total_part_sales() {
        let out = summarize(
            &fixtures::sales_relation(),
            &[nm("Part")],
            nm("Sold"),
            Agg::Sum,
            "TotalPartSales",
            "Total",
        )
        .unwrap();
        let full = fixtures::sales_info1_full();
        let expected = full.table_str("TotalPartSales").unwrap();
        assert!(out.equiv(expected), "got:\n{out}\nexpected:\n{expected}");
    }

    #[test]
    fn summarize_reproduces_total_region_sales() {
        let out = summarize(
            &fixtures::sales_relation(),
            &[nm("Region")],
            nm("Sold"),
            Agg::Sum,
            "TotalRegionSales",
            "Total",
        )
        .unwrap();
        let full = fixtures::sales_info1_full();
        assert!(out.equiv(full.table_str("TotalRegionSales").unwrap()));
    }

    #[test]
    fn grand_total_is_420() {
        assert_eq!(
            grand_total(&fixtures::sales_relation(), nm("Sold"), Agg::Sum).unwrap(),
            Some(420.0)
        );
    }

    #[test]
    fn add_totals_reproduces_full_sales_info2() {
        let bold = fixtures::sales_info2();
        let out = add_totals(
            bold.table_str("Sales").unwrap(),
            &[nm("Region")],
            &[nm("Part")],
            Agg::Sum,
        )
        .unwrap();
        let full = fixtures::sales_info2_full();
        let expected = full.table_str("Sales").unwrap();
        assert!(
            out.equiv(expected),
            "add_totals:\n{out}\nexpected:\n{expected}"
        );
    }

    #[test]
    fn add_totals_on_sales_info3_matches_full_version() {
        let bold = fixtures::sales_info3();
        let out = add_totals(bold.table_str("Sales").unwrap(), &[], &[], Agg::Sum).unwrap();
        // SalesInfo3's Total row/column attributes are the *name* Total,
        // but the column header slot differs (the full fixture uses
        // n:Total as the column attribute where add_totals leaves ⊥ or a
        // shared value attribute). Compare the numeric content.
        let full = fixtures::sales_info3_full();
        let expected = full.table_str("Sales").unwrap();
        assert_eq!(out.height(), expected.height());
        assert_eq!(out.width(), expected.width());
        // Row totals in the last column, grand total in the corner.
        assert_eq!(out.get(1, out.width()), Symbol::value("120"));
        assert_eq!(out.get(out.height(), out.width()), Symbol::value("420"));
    }

    #[test]
    fn other_aggregates() {
        let rel = fixtures::sales_relation();
        let max = summarize(&rel, &[nm("Part")], nm("Sold"), Agg::Max, "M", "MaxSold").unwrap();
        let nuts_row = (1..=max.height())
            .find(|&i| max.get(i, 1) == Symbol::value("nuts"))
            .unwrap();
        assert_eq!(max.get(nuts_row, 2), Symbol::value("60"));
        let count = summarize(&rel, &[nm("Part")], nm("Sold"), Agg::Count, "C", "N").unwrap();
        let screws_row = (1..=count.height())
            .find(|&i| count.get(i, 1) == Symbol::value("screws"))
            .unwrap();
        assert_eq!(count.get(screws_row, 2), Symbol::value("3"));
    }

    #[test]
    fn summarize_by_multiple_attributes() {
        let out = summarize(
            &fixtures::sales_relation(),
            &[nm("Part"), nm("Region")],
            nm("Sold"),
            Agg::Sum,
            "PR",
            "Total",
        )
        .unwrap();
        assert_eq!(out.height(), 8); // all pairs distinct in the fixture
        assert_eq!(out.width(), 3);
    }
}
