//! # tabular-olap
//!
//! The OLAP layer of the PODS 1996 reproduction (paper §4.3 and the
//! future work announced in §5):
//!
//! * [`cube`] — an n-dimensional [`Cube`] with roll-up, slice, dice, and
//!   the tabular views the paper motivates: a 2-dimensional cube *is* a
//!   `SalesInfo3`-style table (data in attribute positions), an
//!   n-dimensional cube flattens to a `SalesInfo4`-style set of
//!   same-named tables;
//! * [`pivot`] — pivot/unpivot **as tabular algebra programs** (group +
//!   clean-up + purge; merge + the projection/difference ⊥-elimination),
//!   realizing §4.3's claim that TA is a restructuring language for OLAP;
//! * [`baseline`] — hand-coded pivot/unpivot for the ablation benchmarks;
//! * [`summarize`] — totals rows/columns and group summaries (the
//!   regular-outline data of Figure 1);
//! * [`classify`] — range/quantile classification (the paper's announced
//!   future work);
//! * [`lattice`] — `ROLLUP`/`CUBE` groupings with `Total` markers; the
//!   Figure 1 summary relations are nodes of `CUBE(Part, Region)`.
//!
//! ```
//! use tabular_olap::{agg::Agg, cube::Cube};
//! use tabular_core::{fixtures, Symbol};
//!
//! let cube = Cube::from_table(
//!     &fixtures::sales_relation(),
//!     &[Symbol::name("Region"), Symbol::name("Part")],
//!     Symbol::name("Sold"),
//!     Agg::Sum,
//! ).unwrap();
//! assert_eq!(cube.grand_total(Agg::Sum), Some(420.0));
//! ```

#![warn(missing_docs)]

pub mod agg;
pub mod baseline;
pub mod classify;
pub mod cube;
pub mod error;
pub mod lattice;
pub mod pivot;
pub mod summarize;

pub use agg::Agg;
pub use classify::Classifier;
pub use cube::{Cube, Dimension};
pub use error::OlapError;
pub use lattice::{cube_table, rollup_table};
pub use pivot::{pivot, pivot_governed, pivot_program, unpivot, unpivot_governed, unpivot_program};
pub use summarize::{add_totals, grand_total, summarize};
