//! Relational algebra expressions — the FO core of `FO + while + new`
//! (Van den Bussche, Van Gucht, Andries & Gyssens, cited as [3] in the
//! paper), with a direct evaluator used as the reference semantics for the
//! Theorem 4.1 compiler.

use crate::error::{RelError, Result};
use crate::relation::{RelDatabase, Relation};
use tabular_core::Symbol;

/// A relational algebra expression.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum RelExpr {
    /// A stored relation.
    Rel(Symbol),
    /// A constant singleton relation `{(value)}` over one attribute.
    /// Constants over *names* keep queries generic (names are fixed by the
    /// genericity permutations, §4.1); value constants are the standard
    /// constants of FO queries.
    Const {
        /// The single attribute.
        attr: Symbol,
        /// The single value.
        value: Symbol,
    },
    /// Set union (union-compatible operands).
    Union(Box<RelExpr>, Box<RelExpr>),
    /// Set difference (union-compatible operands).
    Difference(Box<RelExpr>, Box<RelExpr>),
    /// Cartesian product (disjoint attribute sets).
    Product(Box<RelExpr>, Box<RelExpr>),
    /// `σ_{a=b}`.
    Select {
        /// Operand.
        expr: Box<RelExpr>,
        /// Left attribute.
        a: Symbol,
        /// Right attribute.
        b: Symbol,
    },
    /// `σ_{a=v}` for a constant `v`.
    SelectConst {
        /// Operand.
        expr: Box<RelExpr>,
        /// Attribute.
        a: Symbol,
        /// Constant value.
        v: Symbol,
    },
    /// `π_attrs` (attribute order gives the output header; duplicates
    /// eliminated by set semantics).
    Project {
        /// Operand.
        expr: Box<RelExpr>,
        /// Output attributes.
        attrs: Vec<Symbol>,
    },
    /// `π̄_attrs`: project *away* the listed attributes, keeping the rest
    /// in order (complement projection; compiles to `PROJECT[{* \ …}]`).
    ProjectAway {
        /// Operand.
        expr: Box<RelExpr>,
        /// Attributes to drop.
        attrs: Vec<Symbol>,
    },
    /// `ρ_{to←from}`.
    Rename {
        /// Operand.
        expr: Box<RelExpr>,
        /// Attribute to rename.
        from: Symbol,
        /// New attribute name.
        to: Symbol,
    },
}

impl RelExpr {
    /// Shorthand: stored relation by string name.
    pub fn rel(name: &str) -> RelExpr {
        RelExpr::Rel(Symbol::name(name))
    }

    /// Shorthand: a constant singleton relation (cell syntax for the
    /// value: bare = value, `n:x` = name, `_` = ⊥).
    pub fn constant(attr: &str, value: &str) -> RelExpr {
        RelExpr::Const {
            attr: Symbol::name(attr),
            value: tabular_core::symbol::parse_cell(value, Symbol::value),
        }
    }

    /// Builder: union.
    pub fn union(self, other: RelExpr) -> RelExpr {
        RelExpr::Union(Box::new(self), Box::new(other))
    }

    /// Builder: difference.
    pub fn minus(self, other: RelExpr) -> RelExpr {
        RelExpr::Difference(Box::new(self), Box::new(other))
    }

    /// Builder: product.
    pub fn times(self, other: RelExpr) -> RelExpr {
        RelExpr::Product(Box::new(self), Box::new(other))
    }

    /// Builder: selection `a = b`.
    pub fn select(self, a: &str, b: &str) -> RelExpr {
        RelExpr::Select {
            expr: Box::new(self),
            a: Symbol::name(a),
            b: Symbol::name(b),
        }
    }

    /// Builder: selection `a = v` for a constant (cell syntax: bare =
    /// value, `n:x` = name, `_` = ⊥).
    pub fn select_const(self, a: &str, v: &str) -> RelExpr {
        RelExpr::SelectConst {
            expr: Box::new(self),
            a: Symbol::name(a),
            v: tabular_core::symbol::parse_cell(v, Symbol::value),
        }
    }

    /// Builder: projection.
    pub fn project(self, attrs: &[&str]) -> RelExpr {
        RelExpr::Project {
            expr: Box::new(self),
            attrs: attrs.iter().map(|a| Symbol::name(a)).collect(),
        }
    }

    /// Builder: complement projection.
    pub fn project_away(self, attrs: &[&str]) -> RelExpr {
        RelExpr::ProjectAway {
            expr: Box::new(self),
            attrs: attrs.iter().map(|a| Symbol::name(a)).collect(),
        }
    }

    /// Builder: rename.
    pub fn rename(self, from: &str, to: &str) -> RelExpr {
        RelExpr::Rename {
            expr: Box::new(self),
            from: Symbol::name(from),
            to: Symbol::name(to),
        }
    }

    /// Evaluate the expression against a database. The result is unnamed
    /// (carries a scratch name); callers name it on assignment.
    pub fn eval(&self, db: &RelDatabase) -> Result<Relation> {
        let scratch = Symbol::name("\u{1F}expr-result");
        match self {
            RelExpr::Rel(name) => db
                .get(*name)
                .cloned()
                .ok_or(RelError::MissingRelation(*name)),
            RelExpr::Const { attr, value } => {
                let mut out = Relation::empty(scratch, vec![*attr])?;
                out.insert(vec![*value])?;
                Ok(out)
            }
            RelExpr::Union(l, r) => {
                let (l, r) = (l.eval(db)?, r.eval(db)?);
                let r = align(&l, r)?;
                let mut out = Relation::empty(scratch, l.attrs().to_vec())?;
                for t in l.tuples().chain(r.tuples()) {
                    out.insert(t.clone())?;
                }
                Ok(out)
            }
            RelExpr::Difference(l, r) => {
                let (l, r) = (l.eval(db)?, r.eval(db)?);
                let r = align(&l, r)?;
                let mut out = Relation::empty(scratch, l.attrs().to_vec())?;
                for t in l.tuples() {
                    if !r.contains(t) {
                        out.insert(t.clone())?;
                    }
                }
                Ok(out)
            }
            RelExpr::Product(l, r) => {
                let (l, r) = (l.eval(db)?, r.eval(db)?);
                for a in l.attrs() {
                    if r.attrs().contains(a) {
                        return Err(RelError::ProductAttributeClash(*a));
                    }
                }
                let attrs: Vec<Symbol> = l.attrs().iter().chain(r.attrs()).copied().collect();
                let mut out = Relation::empty(scratch, attrs)?;
                for lt in l.tuples() {
                    for rt in r.tuples() {
                        out.insert(lt.iter().chain(rt).copied().collect())?;
                    }
                }
                Ok(out)
            }
            RelExpr::Select { expr, a, b } => {
                let rel = expr.eval(db)?;
                let (ia, ib) = (rel.attr_index(*a)?, rel.attr_index(*b)?);
                let mut out = Relation::empty(scratch, rel.attrs().to_vec())?;
                for t in rel.tuples() {
                    if t[ia] == t[ib] {
                        out.insert(t.clone())?;
                    }
                }
                Ok(out)
            }
            RelExpr::SelectConst { expr, a, v } => {
                let rel = expr.eval(db)?;
                let ia = rel.attr_index(*a)?;
                let mut out = Relation::empty(scratch, rel.attrs().to_vec())?;
                for t in rel.tuples() {
                    if t[ia] == *v {
                        out.insert(t.clone())?;
                    }
                }
                Ok(out)
            }
            RelExpr::Project { expr, attrs } => {
                let rel = expr.eval(db)?;
                let idx: Vec<usize> = attrs
                    .iter()
                    .map(|&a| rel.attr_index(a))
                    .collect::<Result<_>>()?;
                let mut out = Relation::empty(scratch, attrs.clone())?;
                for t in rel.tuples() {
                    out.insert(idx.iter().map(|&i| t[i]).collect())?;
                }
                Ok(out)
            }
            RelExpr::ProjectAway { expr, attrs } => {
                let rel = expr.eval(db)?;
                let keep: Vec<Symbol> = rel
                    .attrs()
                    .iter()
                    .copied()
                    .filter(|a| !attrs.contains(a))
                    .collect();
                let idx: Vec<usize> = keep
                    .iter()
                    .map(|&a| rel.attr_index(a))
                    .collect::<Result<_>>()?;
                let mut out = Relation::empty(scratch, keep)?;
                for t in rel.tuples() {
                    out.insert(idx.iter().map(|&i| t[i]).collect())?;
                }
                Ok(out)
            }
            RelExpr::Rename { expr, from, to } => {
                let rel = expr.eval(db)?;
                rel.attr_index(*from)?;
                let attrs: Vec<Symbol> = rel
                    .attrs()
                    .iter()
                    .map(|&a| if a == *from { *to } else { a })
                    .collect();
                let mut out = Relation::empty(scratch, attrs)?;
                for t in rel.tuples() {
                    out.insert(t.clone())?;
                }
                Ok(out)
            }
        }
    }

    /// Stored relation names the expression reads.
    pub fn inputs(&self, out: &mut Vec<Symbol>) {
        match self {
            RelExpr::Rel(n) => {
                if !out.contains(n) {
                    out.push(*n);
                }
            }
            RelExpr::Const { .. } => {}
            RelExpr::Union(l, r) | RelExpr::Difference(l, r) | RelExpr::Product(l, r) => {
                l.inputs(out);
                r.inputs(out);
            }
            RelExpr::Select { expr, .. }
            | RelExpr::SelectConst { expr, .. }
            | RelExpr::Project { expr, .. }
            | RelExpr::ProjectAway { expr, .. }
            | RelExpr::Rename { expr, .. } => expr.inputs(out),
        }
    }
}

/// Align `r`'s columns with `l`'s header for union/difference; errors if
/// the headers are not the same attribute set.
fn align(l: &Relation, r: Relation) -> Result<Relation> {
    if l.attrs() == r.attrs() {
        return Ok(r);
    }
    let idx: Vec<usize> = l
        .attrs()
        .iter()
        .map(|&a| r.attr_index(a).map_err(|_| RelError::NotUnionCompatible))
        .collect::<Result<_>>()?;
    if idx.len() != r.arity() {
        return Err(RelError::NotUnionCompatible);
    }
    let mut out = Relation::empty(r.name(), l.attrs().to_vec())?;
    for t in r.tuples() {
        out.insert(idx.iter().map(|&i| t[i]).collect())?;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db() -> RelDatabase {
        RelDatabase::from_relations([
            Relation::new("R", &["A", "B"], &[&["1", "2"], &["2", "2"], &["3", "4"]]),
            Relation::new("S", &["A", "B"], &[&["1", "2"], &["5", "6"]]),
        ])
    }

    #[test]
    fn union_and_difference() {
        let u = RelExpr::rel("R")
            .union(RelExpr::rel("S"))
            .eval(&db())
            .unwrap();
        assert_eq!(u.len(), 4);
        let d = RelExpr::rel("R")
            .minus(RelExpr::rel("S"))
            .eval(&db())
            .unwrap();
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn union_aligns_permuted_headers() {
        let mut db = db();
        db.set(Relation::new("P", &["B", "A"], &[&["2", "1"], &["9", "8"]]));
        let u = RelExpr::rel("R")
            .union(RelExpr::rel("P"))
            .eval(&db)
            .unwrap();
        // (1,2) collapses with R's (1,2); (8,9) is new.
        assert_eq!(u.len(), 4);
        assert!(u.contains(&[Symbol::value("8"), Symbol::value("9")]));
    }

    #[test]
    fn union_rejects_incompatible() {
        let mut db = db();
        db.set(Relation::new("Q", &["X"], &[&["1"]]));
        assert!(matches!(
            RelExpr::rel("R").union(RelExpr::rel("Q")).eval(&db),
            Err(RelError::NotUnionCompatible)
        ));
    }

    #[test]
    fn product_requires_disjoint_attrs() {
        assert!(matches!(
            RelExpr::rel("R").times(RelExpr::rel("S")).eval(&db()),
            Err(RelError::ProductAttributeClash(_))
        ));
        let p = RelExpr::rel("R")
            .times(RelExpr::rel("S").rename("A", "C").rename("B", "D"))
            .eval(&db())
            .unwrap();
        assert_eq!(p.len(), 6);
        assert_eq!(p.arity(), 4);
    }

    #[test]
    fn select_and_select_const() {
        let s = RelExpr::rel("R").select("A", "B").eval(&db()).unwrap();
        assert_eq!(s.len(), 1);
        assert!(s.contains(&[Symbol::value("2"), Symbol::value("2")]));
        let c = RelExpr::rel("R")
            .select_const("B", "2")
            .eval(&db())
            .unwrap();
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn project_dedupes_and_reorders() {
        let p = RelExpr::rel("R").project(&["B"]).eval(&db()).unwrap();
        assert_eq!(p.len(), 2); // {2, 4}
        let swapped = RelExpr::rel("R").project(&["B", "A"]).eval(&db()).unwrap();
        assert!(swapped.contains(&[Symbol::value("2"), Symbol::value("1")]));
    }

    #[test]
    fn rename_changes_header_only() {
        let r = RelExpr::rel("R").rename("A", "X").eval(&db()).unwrap();
        assert_eq!(r.attrs()[0], Symbol::name("X"));
        assert_eq!(r.len(), 3);
        assert!(RelExpr::rel("R").rename("Z", "X").eval(&db()).is_err());
    }

    #[test]
    fn missing_relation_and_attribute_errors() {
        assert!(matches!(
            RelExpr::rel("Nope").eval(&db()),
            Err(RelError::MissingRelation(_))
        ));
        assert!(RelExpr::rel("R").project(&["Z"]).eval(&db()).is_err());
    }

    #[test]
    fn inputs_are_collected_once() {
        let e = RelExpr::rel("R").union(RelExpr::rel("R").minus(RelExpr::rel("S")));
        let mut ins = Vec::new();
        e.inputs(&mut ins);
        assert_eq!(ins, vec![Symbol::name("R"), Symbol::name("S")]);
    }
}
