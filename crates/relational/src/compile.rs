//! **Theorem 4.1**: the language `FO + while + new` can be simulated
//! within the tabular algebra.
//!
//! The compiler realizes the theorem constructively: every `FO + while +
//! new` program is translated, statement by statement, into a tabular
//! algebra [`Program`] over the natural tabular representation of the
//! relational database (relations ↦ tables with ⊥ row attributes):
//!
//! * classical union   ↦ tabular union + purge + clean-up (paper §3.4);
//! * difference        ↦ tabular difference (classical on relational
//!   tables, since mutual subsumption coincides with tuple equality);
//! * product, σ, π, ρ  ↦ their tabular counterparts, with a clean-up after
//!   projection to restore set semantics;
//! * `new`             ↦ tuple-new;
//! * `while`           ↦ the TA `while` construct.
//!
//! Intermediate results live in reserved-namespace scratch tables; use
//! [`tabular_algebra::run_outputs`] (or [`run_compiled`]) to project them
//! away.

use crate::error::Result;
use crate::expr::RelExpr;
use crate::program::{FoProgram, FoStatement};
use crate::relation::RelDatabase;
use tabular_algebra::derived::Emitter;
use tabular_algebra::{EvalLimits, OpKind, Param, Program};
use tabular_core::Symbol;

/// Compiler state: a statement emitter with scratch names.
struct Compiler {
    e: Emitter,
    anchor: Option<Symbol>,
}

impl Compiler {
    fn fresh(&mut self) -> Symbol {
        self.e.fresh()
    }

    fn emit(&mut self, target: Symbol, op: OpKind, args: Vec<Symbol>) {
        self.e.assign(target, op, &args);
    }

    /// Compile an expression; returns the scratch table holding its value.
    fn compile_expr(&mut self, expr: &RelExpr) -> Symbol {
        match expr {
            RelExpr::Rel(name) => {
                let s = self.fresh();
                self.emit(s, OpKind::Copy, vec![*name]);
                s
            }
            RelExpr::Const { attr, value } => {
                // Constants are materialized with the §3.3 switch trick
                // (see `tabular_algebra::derived::Emitter::constant`),
                // anchored on a one-row table derived from the anchor
                // relation. The scratch table is transiently *named* the
                // constant symbol; if that collides with a stored
                // relation, the relation is saved and restored around the
                // construction. With an empty (or absent) anchor the
                // constant compiles to the empty relation — TA cannot
                // create occurrences out of nothing.
                let Some(anchor) = self.anchor else {
                    // No stored relation to bootstrap from: the constant
                    // compiles to an absent table (TA cannot create
                    // occurrences ex nihilo); reading the output will
                    // report the missing relation.
                    return self.fresh();
                };
                let one = self.e.one_row(anchor);
                let saved = self.fresh();
                self.emit(saved, OpKind::Copy, vec![*value]);
                let c0 = self.e.constant(*value, *attr, one);
                self.emit(*value, OpKind::Copy, vec![saved]);
                let s = self.fresh();
                self.emit(s, OpKind::Copy, vec![c0]);
                s
            }
            RelExpr::Union(l, r) => {
                let (sl, sr) = (self.compile_expr(l), self.compile_expr(r));
                let s = self.fresh();
                self.emit(s, OpKind::ClassicalUnion, vec![sl, sr]);
                s
            }
            RelExpr::Difference(l, r) => {
                let (sl, sr) = (self.compile_expr(l), self.compile_expr(r));
                let s = self.fresh();
                self.emit(s, OpKind::Difference, vec![sl, sr]);
                s
            }
            RelExpr::Product(l, r) => {
                let (sl, sr) = (self.compile_expr(l), self.compile_expr(r));
                let s = self.fresh();
                self.emit(s, OpKind::Product, vec![sl, sr]);
                s
            }
            RelExpr::Select { expr, a, b } => {
                let s0 = self.compile_expr(expr);
                let s = self.fresh();
                self.emit(
                    s,
                    OpKind::Select {
                        a: Param::sym(*a),
                        b: Param::sym(*b),
                    },
                    vec![s0],
                );
                s
            }
            RelExpr::SelectConst { expr, a, v } => {
                let s0 = self.compile_expr(expr);
                let s = self.fresh();
                self.emit(
                    s,
                    OpKind::SelectConst {
                        a: Param::sym(*a),
                        v: Param::sym(*v),
                    },
                    vec![s0],
                );
                s
            }
            RelExpr::Project { expr, attrs } => {
                let s0 = self.compile_expr(expr);
                let s1 = self.fresh();
                let attrs_param = Param {
                    positive: attrs
                        .iter()
                        .map(|a| tabular_algebra::param::Item::Sym(*a))
                        .collect(),
                    negative: vec![],
                };
                self.emit(s1, OpKind::Project { attrs: attrs_param }, vec![s0]);
                // Projection may create duplicate rows; clean-up restores
                // set semantics (clean-up generalizes duplicate
                // elimination, paper §3.4).
                let s = self.fresh();
                self.emit(
                    s,
                    OpKind::CleanUp {
                        by: Param::star(),
                        on: Param::null(),
                    },
                    vec![s1],
                );
                s
            }
            RelExpr::ProjectAway { expr, attrs } => {
                let s0 = self.compile_expr(expr);
                let s1 = self.fresh();
                let attrs_param = Param {
                    positive: vec![tabular_algebra::param::Item::Star(0)],
                    negative: attrs
                        .iter()
                        .map(|a| tabular_algebra::param::Item::Sym(*a))
                        .collect(),
                };
                self.emit(s1, OpKind::Project { attrs: attrs_param }, vec![s0]);
                let s = self.fresh();
                self.emit(
                    s,
                    OpKind::CleanUp {
                        by: Param::star(),
                        on: Param::null(),
                    },
                    vec![s1],
                );
                s
            }
            RelExpr::Rename { expr, from, to } => {
                let s0 = self.compile_expr(expr);
                let s = self.fresh();
                self.emit(
                    s,
                    OpKind::Rename {
                        from: Param::sym(*from),
                        to: Param::sym(*to),
                    },
                    vec![s0],
                );
                s
            }
        }
    }

    fn compile_statements(&mut self, stmts: &[FoStatement]) {
        for stmt in stmts {
            match stmt {
                FoStatement::Assign { target, expr } => {
                    let s = self.compile_expr(expr);
                    self.emit(*target, OpKind::Copy, vec![s]);
                }
                FoStatement::New {
                    target,
                    source,
                    attr,
                } => {
                    self.emit(
                        *target,
                        OpKind::TupleNew {
                            attr: Param::sym(*attr),
                        },
                        vec![*source],
                    );
                }
                FoStatement::While { cond, body } => {
                    // Move the emitter into a scope where the body compiles
                    // into the loop; the shared counter keeps scratch names
                    // unique across nesting levels.
                    let anchor = self.anchor;
                    self.e.while_nonempty(*cond, |inner_emitter| {
                        let mut inner = Compiler {
                            e: std::mem::take(inner_emitter),
                            anchor,
                        };
                        inner.compile_statements(body);
                        *inner_emitter = inner.e;
                    });
                }
            }
        }
    }
}

/// Compile an `FO + while + new` program into an equivalent tabular
/// algebra program (Theorem 4.1).
pub fn compile(p: &FoProgram) -> Program {
    // The anchor for constant construction: the first stored relation the
    // program reads (constants need *some* non-empty table to bootstrap a
    // row from; see the Const arm above).
    let mut anchors = Vec::new();
    collect_inputs(&p.statements, &mut anchors);
    let mut c = Compiler {
        e: Emitter::new(),
        anchor: anchors.first().copied(),
    };
    c.compile_statements(&p.statements);
    c.e.into_program()
}

fn collect_inputs(stmts: &[FoStatement], out: &mut Vec<Symbol>) {
    for stmt in stmts {
        match stmt {
            FoStatement::Assign { expr, .. } => expr.inputs(out),
            FoStatement::New { source, .. } => {
                if !out.contains(source) {
                    out.push(*source);
                }
            }
            FoStatement::While { body, .. } => collect_inputs(body, out),
        }
    }
}

/// Convenience: run an `FO + while + new` program *through the tabular
/// algebra* — embed the database, run the compiled program, and read the
/// requested output relations back.
pub fn run_compiled(
    p: &FoProgram,
    db: &RelDatabase,
    outputs: &[&str],
    limits: &EvalLimits,
) -> Result<RelDatabase> {
    Ok(run_compiled_traced(p, db, outputs, limits)?.0)
}

/// Like [`run_compiled`], additionally returning the tabular evaluator's
/// statistics and structured trace (spans describe the *compiled* TA
/// statements, so the breakdown shows what the Theorem 4.1 simulation
/// actually paid for each source-level construct).
pub fn run_compiled_traced(
    p: &FoProgram,
    db: &RelDatabase,
    outputs: &[&str],
    limits: &EvalLimits,
) -> Result<(
    RelDatabase,
    tabular_algebra::EvalStats,
    tabular_algebra::Trace,
)> {
    let compiled = compile(p);
    let tabular = db.to_tabular();
    let (result, stats, trace) = tabular_algebra::run_traced(&compiled, &tabular, limits)?;
    let names: Vec<Symbol> = outputs.iter().map(|n| Symbol::name(n)).collect();
    Ok((RelDatabase::from_tabular(&result, &names)?, stats, trace))
}

/// Like [`run_compiled_traced`], but governed by a
/// [`tabular_algebra::Budget`]: the compiled TA run honors the budget's
/// deadline, run-cell allowance, and cancellation token, and a trip
/// surfaces as [`tabular_algebra::AlgebraError::BudgetExceeded`]
/// carrying the partial stats and trace of the compiled run.
pub fn run_compiled_governed(
    p: &FoProgram,
    db: &RelDatabase,
    outputs: &[&str],
    budget: &tabular_algebra::Budget,
) -> Result<(
    RelDatabase,
    tabular_algebra::EvalStats,
    tabular_algebra::Trace,
)> {
    let compiled = compile(p);
    let tabular = db.to_tabular();
    let (result, stats, trace) = tabular_algebra::run_governed_traced(&compiled, &tabular, budget)?;
    let names: Vec<Symbol> = outputs.iter().map(|n| Symbol::name(n)).collect();
    Ok((RelDatabase::from_tabular(&result, &names)?, stats, trace))
}

/// Like [`run_compiled_governed`], but the compiled TA program goes
/// through the cost-based planner first (`tabular_algebra::plan` reads
/// statistics off the embedded database). Compiled programs are full of
/// single-read scratch intermediates — exactly the shapes the planner's
/// rules rewrite — so the returned report shows what the Theorem 4.1
/// simulation's output gained from planning.
pub fn run_compiled_planned(
    p: &FoProgram,
    db: &RelDatabase,
    outputs: &[&str],
    budget: &tabular_algebra::Budget,
) -> Result<(
    RelDatabase,
    tabular_algebra::EvalStats,
    tabular_algebra::Trace,
    tabular_algebra::PlanReport,
)> {
    let compiled = compile(p);
    let tabular = db.to_tabular();
    let (result, stats, trace, report) =
        tabular_algebra::run_planned_governed_traced(&compiled, &tabular, budget)?;
    let names: Vec<Symbol> = outputs.iter().map(|n| Symbol::name(n)).collect();
    Ok((
        RelDatabase::from_tabular(&result, &names)?,
        stats,
        trace,
        report,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{canonicalize_fresh, transitive_closure_program};
    use crate::relation::Relation;

    fn limits() -> EvalLimits {
        EvalLimits::default()
    }

    /// Check Theorem 4.1 on one program: direct evaluation and evaluation
    /// through the compiled tabular program agree on the outputs.
    fn simulate_and_compare(p: &FoProgram, db: &RelDatabase, outputs: &[&str]) {
        let direct = p.run(db, 10_000).unwrap();
        let via_ta = run_compiled(p, db, outputs, &limits()).unwrap();
        for out in outputs {
            let d = direct.get_str(out).unwrap();
            let t = via_ta.get_str(out).unwrap();
            assert!(
                d.equiv(t),
                "output {out} differs\ndirect:\n{d:?}\nvia TA:\n{t:?}"
            );
        }
    }

    fn sample_db() -> RelDatabase {
        RelDatabase::from_relations([
            Relation::new("R", &["A", "B"], &[&["1", "2"], &["2", "2"], &["3", "4"]]),
            Relation::new("S", &["A", "B"], &[&["1", "2"], &["5", "6"]]),
        ])
    }

    #[test]
    fn simulates_union_difference() {
        let p = FoProgram::new()
            .assign("U", RelExpr::rel("R").union(RelExpr::rel("S")))
            .assign("D", RelExpr::rel("R").minus(RelExpr::rel("S")));
        simulate_and_compare(&p, &sample_db(), &["U", "D"]);
    }

    #[test]
    fn simulates_product_select_project_rename() {
        let p = FoProgram::new().assign(
            "J",
            RelExpr::rel("R")
                .times(RelExpr::rel("S").rename("A", "C").rename("B", "D"))
                .select("B", "D")
                .project(&["A", "C"]),
        );
        simulate_and_compare(&p, &sample_db(), &["J"]);
    }

    #[test]
    fn simulates_select_const() {
        let p = FoProgram::new().assign("C", RelExpr::rel("R").select_const("B", "2"));
        simulate_and_compare(&p, &sample_db(), &["C"]);
    }

    #[test]
    fn simulates_projection_with_duplicates() {
        // π_B(R) has duplicates pre-dedup; the compiled clean-up must
        // restore set semantics.
        let p = FoProgram::new().assign("P", RelExpr::rel("R").project(&["B"]));
        simulate_and_compare(&p, &sample_db(), &["P"]);
    }

    #[test]
    fn simulates_transitive_closure_with_while() {
        let db = RelDatabase::from_relations([Relation::new(
            "E",
            &["From", "To"],
            &[&["a", "b"], &["b", "c"], &["c", "d"], &["d", "a"]],
        )]);
        simulate_and_compare(&transitive_closure_program(), &db, &["TC"]);
        // A cycle: TC is the full 4×4 square.
        let direct = transitive_closure_program().run(&db, 100).unwrap();
        assert_eq!(direct.get_str("TC").unwrap().len(), 16);
    }

    #[test]
    fn simulates_new_up_to_fresh_choice() {
        let db = RelDatabase::from_relations([Relation::new("R", &["A"], &[&["1"], &["2"]])]);
        let p = FoProgram::new().new_ids("T", "R", "Id");
        let direct = canonicalize_fresh(&p.run(&db, 100).unwrap());
        let via_ta = canonicalize_fresh(&run_compiled(&p, &db, &["T"], &limits()).unwrap());
        assert!(direct
            .get_str("T")
            .unwrap()
            .equiv(via_ta.get_str("T").unwrap()));
    }

    #[test]
    fn simulates_constants() {
        // Tag every R-tuple with a constant marker column.
        let p = FoProgram::new().assign(
            "M",
            RelExpr::rel("R").times(RelExpr::constant("Mark", "yes")),
        );
        simulate_and_compare(&p, &sample_db(), &["M"]);
    }

    #[test]
    fn simulates_name_constant_colliding_with_a_relation() {
        // The constant's transient scratch table is named like the stored
        // relation S; the compiled program must save and restore S.
        let p = FoProgram::new()
            .assign(
                "M",
                RelExpr::rel("R").times(RelExpr::constant("Mark", "n:S")),
            )
            .assign("Check", RelExpr::rel("S"));
        simulate_and_compare(&p, &sample_db(), &["M", "Check"]);
    }

    #[test]
    fn compiled_program_is_structural() {
        // Compilation does not look at data: the same program compiles to
        // the same number of statements regardless of the database.
        let p = transitive_closure_program();
        let c1 = compile(&p);
        let c2 = compile(&p);
        assert_eq!(c1.len(), c2.len());
        assert!(c1.len() >= 10);
    }

    #[test]
    fn planned_run_agrees_with_direct_and_rewrites_compiled_scratch() {
        // Transitive closure compiles into copy chains and a
        // PRODUCT-into-scratch + SELECT pair — shapes the planner
        // rewrites. The planned run must agree with direct FO evaluation
        // and report at least one rewrite.
        let program = transitive_closure_program();
        let db = RelDatabase::from_relations([Relation::new(
            "E",
            &["From", "To"],
            &[&["a", "b"], &["b", "c"], &["c", "d"]],
        )]);
        let direct = program.run(&db, 1000).unwrap();
        let budget = tabular_algebra::Budget::from_limits(&limits());
        let (planned, stats, _, report) =
            run_compiled_planned(&program, &db, &["TC"], &budget).unwrap();
        assert!(direct
            .get_str("TC")
            .unwrap()
            .equiv(planned.get_str("TC").unwrap()));
        assert!(report.rules_applied() >= 1, "compiled scratch rewrites");
        assert_eq!(stats.plan_rules_applied, report.rules_applied());
        assert_eq!(stats.plans_rewritten, report.statements_rewritten);
    }

    #[test]
    fn optimizer_shrinks_compiled_programs_and_preserves_outputs() {
        let program = transitive_closure_program();
        let compiled = compile(&program);
        let optimized = tabular_algebra::optimize(&compiled);
        assert!(
            optimized.len() < compiled.len(),
            "optimizer should remove copy chains: {} vs {}",
            optimized.len(),
            compiled.len()
        );
        // The loop body's σ_{Mid=Mid2}(TC' × E') compiles to a PRODUCT into
        // single-use scratch followed by the SELECT, so the optimizer must
        // rewrite the pair into the fused hash-join operator — and since
        // that is the only product the compiler emits, none may survive.
        fn count(stmts: &[tabular_algebra::Statement], pred: fn(&OpKind) -> bool) -> usize {
            stmts
                .iter()
                .map(|s| match s {
                    tabular_algebra::Statement::Assign(a) => usize::from(pred(&a.op)),
                    tabular_algebra::Statement::While { body, .. } => count(body, pred),
                })
                .sum()
        }
        let fused = count(&optimized.statements, |op| {
            matches!(op, OpKind::FusedJoin { .. })
        });
        let products = count(&optimized.statements, |op| matches!(op, OpKind::Product));
        assert!(fused >= 1, "compiled TC's SELECT ∘ PRODUCT should fuse");
        assert_eq!(products, 0, "no unfused PRODUCT should survive");
        let db = RelDatabase::from_relations([Relation::new(
            "E",
            &["From", "To"],
            &[&["a", "b"], &["b", "c"]],
        )]);
        let direct = program.run(&db, 1000).unwrap();
        let tabular = db.to_tabular();
        let result = tabular_algebra::run(&optimized, &tabular, &limits()).unwrap();
        let via_opt =
            RelDatabase::from_tabular(&result, &[tabular_core::Symbol::name("TC")]).unwrap();
        assert!(direct
            .get_str("TC")
            .unwrap()
            .equiv(via_opt.get_str("TC").unwrap()));
    }

    #[test]
    fn traced_compilation_exposes_per_op_breakdown() {
        let db = RelDatabase::from_relations([Relation::new(
            "E",
            &["From", "To"],
            &[&["a", "b"], &["b", "c"], &["c", "d"]],
        )]);
        let traced = EvalLimits {
            trace: tabular_algebra::TraceLevel::Spans,
            ..EvalLimits::default()
        };
        let (out, stats, trace) =
            run_compiled_traced(&transitive_closure_program(), &db, &["TC"], &traced).unwrap();
        assert!(out.get_str("TC").is_some());
        assert_eq!(trace.per_op_micros(), stats.op_micros);
        // The Theorem 4.1 compilation of TC runs products and differences
        // inside the loop; the trace must show them.
        assert!(stats.op_counts.contains_key("PRODUCT"));
        assert!(trace.spans().any(|s| s.op == "PRODUCT"));
    }

    #[test]
    fn empty_input_relations_work() {
        let db = RelDatabase::from_relations([Relation::new("E", &["From", "To"], &[])]);
        simulate_and_compare(&transitive_closure_program(), &db, &["TC"]);
    }
}
