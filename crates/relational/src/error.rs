//! Errors for the relational substrate.

use tabular_core::Symbol;

/// Errors from relational evaluation, compilation, and model violations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RelError {
    /// A relation header repeated an attribute.
    DuplicateAttribute(Symbol),
    /// Tuple arity did not match the header.
    Arity {
        /// Relation concerned.
        relation: Symbol,
        /// Header arity.
        expected: usize,
        /// Tuple arity.
        got: usize,
    },
    /// An attribute was not part of a relation's header.
    UnknownAttribute {
        /// Relation concerned.
        relation: Symbol,
        /// The missing attribute.
        attr: Symbol,
    },
    /// A referenced relation does not exist.
    MissingRelation(Symbol),
    /// Several tables carried the name of the requested relation.
    AmbiguousRelation(Symbol),
    /// A table could not be read back as a relation.
    NotRelational(Symbol),
    /// Product operands share attribute names (rename first).
    ProductAttributeClash(Symbol),
    /// Union/difference operands have different headers.
    NotUnionCompatible,
    /// A `while` loop exceeded the iteration bound.
    WhileLimit(usize),
    /// A compiled tabular program failed.
    Tabular(tabular_algebra::AlgebraError),
}

impl std::fmt::Display for RelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RelError::DuplicateAttribute(r) => write!(f, "relation {r} repeats an attribute"),
            RelError::Arity {
                relation,
                expected,
                got,
            } => write!(f, "relation {relation}: arity {got}, expected {expected}"),
            RelError::UnknownAttribute { relation, attr } => {
                write!(f, "relation {relation} has no attribute {attr}")
            }
            RelError::MissingRelation(r) => write!(f, "relation {r} not found"),
            RelError::AmbiguousRelation(r) => write!(f, "several tables named {r}"),
            RelError::NotRelational(r) => write!(f, "table {r} is not relational"),
            RelError::ProductAttributeClash(a) => {
                write!(f, "product operands share attribute {a}; rename first")
            }
            RelError::NotUnionCompatible => write!(f, "operands are not union-compatible"),
            RelError::WhileLimit(n) => write!(f, "while loop exceeded {n} iterations"),
            RelError::Tabular(e) => write!(f, "tabular program failed: {e}"),
        }
    }
}

impl std::error::Error for RelError {}

impl From<tabular_algebra::AlgebraError> for RelError {
    fn from(e: tabular_algebra::AlgebraError) -> RelError {
        RelError::Tabular(e)
    }
}

/// Result alias.
pub type Result<T> = std::result::Result<T, RelError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = RelError::UnknownAttribute {
            relation: Symbol::name("R"),
            attr: Symbol::name("Z"),
        };
        assert!(e.to_string().contains('Z'));
        assert!(RelError::WhileLimit(7).to_string().contains('7'));
    }
}
