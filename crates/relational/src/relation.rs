//! The classical relational model, built as the substrate for Theorem 4.1:
//! the language `FO + while + new` over relations is simulated in the
//! tabular algebra, so we need relations, a relational algebra, and an
//! interpreter of our own to compare against.
//!
//! Relations here are *named-attribute, set-semantics* relations: a header
//! of pairwise-distinct attribute names and a set of tuples of values.

use crate::error::{RelError, Result};
use std::collections::BTreeSet;
use tabular_core::{Symbol, SymbolSet, Table};

/// A relation: a named header of distinct attributes plus a set of tuples.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Relation {
    name: Symbol,
    attrs: Vec<Symbol>,
    tuples: BTreeSet<Vec<Symbol>>,
}

impl Relation {
    /// An empty relation over the given attributes.
    pub fn empty(name: Symbol, attrs: Vec<Symbol>) -> Result<Relation> {
        let distinct: SymbolSet = attrs.iter().copied().collect();
        if distinct.len() != attrs.len() {
            return Err(RelError::DuplicateAttribute(name));
        }
        Ok(Relation {
            name,
            attrs,
            tuples: BTreeSet::new(),
        })
    }

    /// Build from string data: attribute names, and tuples in the cell
    /// syntax of [`tabular_core::symbol::parse_cell`] (bare cells are
    /// values; `n:`/`v:` tags override; `_` is ⊥).
    pub fn new(name: &str, attrs: &[&str], rows: &[&[&str]]) -> Relation {
        let mut r = Relation::empty(
            Symbol::name(name),
            attrs.iter().map(|a| Symbol::name(a)).collect(),
        )
        .expect("distinct attributes");
        for row in rows {
            r.insert(
                row.iter()
                    .map(|v| tabular_core::symbol::parse_cell(v, Symbol::value))
                    .collect(),
            )
            .expect("arity");
        }
        r
    }

    /// The relation name.
    pub fn name(&self) -> Symbol {
        self.name
    }

    /// Rename the relation.
    pub fn with_name(mut self, name: Symbol) -> Relation {
        self.name = name;
        self
    }

    /// The attribute list.
    pub fn attrs(&self) -> &[Symbol] {
        &self.attrs
    }

    /// Arity.
    pub fn arity(&self) -> usize {
        self.attrs.len()
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// True if no tuples.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Iterate over the tuples in sorted order.
    pub fn tuples(&self) -> impl Iterator<Item = &Vec<Symbol>> {
        self.tuples.iter()
    }

    /// Insert a tuple; errors on arity mismatch.
    pub fn insert(&mut self, tuple: Vec<Symbol>) -> Result<bool> {
        if tuple.len() != self.attrs.len() {
            return Err(RelError::Arity {
                relation: self.name,
                expected: self.attrs.len(),
                got: tuple.len(),
            });
        }
        Ok(self.tuples.insert(tuple))
    }

    /// Membership test.
    pub fn contains(&self, tuple: &[Symbol]) -> bool {
        self.tuples.contains(tuple)
    }

    /// Position of an attribute.
    pub fn attr_index(&self, a: Symbol) -> Result<usize> {
        self.attrs
            .iter()
            .position(|&x| x == a)
            .ok_or(RelError::UnknownAttribute {
                relation: self.name,
                attr: a,
            })
    }

    /// A column-permutation normal form: attributes sorted by their
    /// canonical symbol order, tuples reordered accordingly. Two relations
    /// represent the same *named* relation iff their canonical forms are
    /// equal.
    pub fn canonical(&self) -> Relation {
        let mut order: Vec<usize> = (0..self.attrs.len()).collect();
        order.sort_by(|&a, &b| self.attrs[a].canonical_cmp(self.attrs[b]));
        let attrs: Vec<Symbol> = order.iter().map(|&i| self.attrs[i]).collect();
        let tuples: BTreeSet<Vec<Symbol>> = self
            .tuples
            .iter()
            .map(|t| order.iter().map(|&i| t[i]).collect())
            .collect();
        Relation {
            name: self.name,
            attrs,
            tuples,
        }
    }

    /// Equality as named relations (up to column permutation).
    pub fn equiv(&self, other: &Relation) -> bool {
        self.name == other.name && self.canonical().same_content(&other.canonical())
    }

    fn same_content(&self, other: &Relation) -> bool {
        self.attrs == other.attrs && self.tuples == other.tuples
    }

    // ------------------------------------------------------------------
    // Embedding into the tabular model (paper §1/§4.1: a relation is the
    // table with ⊥ row attributes and its attributes as column attributes)
    // ------------------------------------------------------------------

    /// The natural tabular representation of this relation.
    pub fn to_table(&self) -> Table {
        let rows: Vec<Vec<Symbol>> = self.tuples.iter().cloned().collect();
        Table::relational_syms(self.name, &self.attrs, &rows)
    }

    /// Read a relation back from a relational-shaped table (see
    /// [`Table::is_relational`]).
    pub fn from_table(t: &Table) -> Result<Relation> {
        if !t.is_relational() {
            return Err(RelError::NotRelational(t.name()));
        }
        let mut r = Relation::empty(t.name(), t.col_attrs().to_vec())?;
        for i in 1..=t.height() {
            r.insert(t.data_row(i).to_vec())?;
        }
        Ok(r)
    }
}

/// A relational database: a set of relations with distinct names.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct RelDatabase {
    relations: Vec<Relation>,
}

impl RelDatabase {
    /// The empty database.
    pub fn new() -> RelDatabase {
        RelDatabase::default()
    }

    /// Build from relations; later relations replace earlier same-named
    /// ones.
    pub fn from_relations<I: IntoIterator<Item = Relation>>(rels: I) -> RelDatabase {
        let mut db = RelDatabase::new();
        for r in rels {
            db.set(r);
        }
        db
    }

    /// Insert or replace a relation.
    pub fn set(&mut self, r: Relation) {
        if let Some(slot) = self.relations.iter_mut().find(|x| x.name() == r.name()) {
            *slot = r;
        } else {
            self.relations.push(r);
        }
    }

    /// Look up by name.
    pub fn get(&self, name: Symbol) -> Option<&Relation> {
        self.relations.iter().find(|r| r.name() == name)
    }

    /// Look up by string name.
    pub fn get_str(&self, name: &str) -> Option<&Relation> {
        self.get(Symbol::name(name))
    }

    /// All relations.
    pub fn relations(&self) -> &[Relation] {
        &self.relations
    }

    /// Equality as a set of named relations.
    pub fn equiv(&self, other: &RelDatabase) -> bool {
        self.relations.len() == other.relations.len()
            && self
                .relations
                .iter()
                .all(|r| other.get(r.name()).is_some_and(|o| r.equiv(o)))
    }

    /// Embed the whole database into the tabular model.
    pub fn to_tabular(&self) -> tabular_core::Database {
        tabular_core::Database::from_tables(self.relations.iter().map(Relation::to_table))
    }

    /// Extract the relations of the given names from a tabular database
    /// (used to read back the results of a compiled TA program).
    pub fn from_tabular(db: &tabular_core::Database, names: &[Symbol]) -> Result<RelDatabase> {
        let mut out = RelDatabase::new();
        for &name in names {
            let mut tables = db.tables_named_iter(name);
            match (tables.next(), tables.next()) {
                (Some(t), None) => out.set(Relation::from_table(t)?),
                (None, _) => return Err(RelError::MissingRelation(name)),
                (Some(_), Some(_)) => return Err(RelError::AmbiguousRelation(name)),
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_semantics_dedupe() {
        let mut r = Relation::new("R", &["A"], &[&["1"]]);
        assert!(!r.insert(vec![Symbol::value("1")]).unwrap());
        assert!(r.insert(vec![Symbol::value("2")]).unwrap());
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn arity_is_enforced() {
        let mut r = Relation::new("R", &["A", "B"], &[]);
        assert!(matches!(
            r.insert(vec![Symbol::value("1")]),
            Err(RelError::Arity { .. })
        ));
    }

    #[test]
    fn duplicate_attributes_rejected() {
        assert!(Relation::empty(
            Symbol::name("R"),
            vec![Symbol::name("A"), Symbol::name("A")]
        )
        .is_err());
    }

    #[test]
    fn equiv_up_to_column_permutation() {
        let r1 = Relation::new("R", &["A", "B"], &[&["1", "2"]]);
        let r2 = Relation::new("R", &["B", "A"], &[&["2", "1"]]);
        assert!(r1.equiv(&r2));
        let r3 = Relation::new("R", &["B", "A"], &[&["1", "2"]]);
        assert!(!r1.equiv(&r3));
    }

    #[test]
    fn table_round_trip() {
        let r = Relation::new(
            "Sales",
            &["Part", "Sold"],
            &[&["nuts", "50"], &["bolts", "70"]],
        );
        let t = r.to_table();
        assert!(t.is_relational());
        let back = Relation::from_table(&t).unwrap();
        assert!(r.equiv(&back));
    }

    #[test]
    fn from_table_rejects_non_relational() {
        let db = tabular_core::fixtures::sales_info2();
        let t = db.table_str("Sales").unwrap();
        assert!(matches!(
            Relation::from_table(t),
            Err(RelError::NotRelational(_))
        ));
    }

    #[test]
    fn database_set_replaces() {
        let mut db = RelDatabase::new();
        db.set(Relation::new("R", &["A"], &[&["1"]]));
        db.set(Relation::new("R", &["A"], &[&["2"]]));
        assert_eq!(db.relations().len(), 1);
        assert_eq!(db.get_str("R").unwrap().len(), 1);
        assert!(db.get_str("R").unwrap().contains(&[Symbol::value("2")]));
    }

    #[test]
    fn tabular_round_trip_for_database() {
        let db = RelDatabase::from_relations([
            Relation::new("R", &["A"], &[&["1"]]),
            Relation::new("S", &["B", "C"], &[&["2", "3"]]),
        ]);
        let tab = db.to_tabular();
        let names: Vec<Symbol> = db.relations().iter().map(|r| r.name()).collect();
        let back = RelDatabase::from_tabular(&tab, &names).unwrap();
        assert!(db.equiv(&back));
    }
}
