//! # tabular-relational
//!
//! The relational substrate of the PODS 1996 reproduction:
//!
//! * [`relation`] — named-attribute, set-semantics relations and
//!   relational databases, with the natural embedding into the tabular
//!   model (relations ↦ tables with ⊥ row attributes);
//! * [`expr`] — relational algebra expressions with a reference
//!   evaluator (the FO core);
//! * [`program`] — the language `FO + while + new` (assignments,
//!   iteration, object creation), the source language of Theorem 4.1;
//! * [`compile`] — the **Theorem 4.1** compiler: every `FO + while + new`
//!   program is translated into an equivalent tabular algebra program.
//!
//! ```
//! use tabular_relational::{expr::RelExpr, program::FoProgram, relation::{RelDatabase, Relation}};
//! use tabular_relational::compile::run_compiled;
//! use tabular_algebra::EvalLimits;
//!
//! let db = RelDatabase::from_relations([Relation::new("R", &["A"], &[&["1"], &["2"]])]);
//! let p = FoProgram::new().assign("Out", RelExpr::rel("R").select_const("A", "1"));
//! let direct = p.run(&db, 100).unwrap();
//! let via_ta = run_compiled(&p, &db, &["Out"], &EvalLimits::default()).unwrap();
//! assert!(direct.get_str("Out").unwrap().equiv(via_ta.get_str("Out").unwrap()));
//! ```

#![warn(missing_docs)]

pub mod compile;
pub mod error;
pub mod expr;
pub mod program;
pub mod relation;

pub use compile::{compile, run_compiled, run_compiled_governed, run_compiled_traced};
pub use error::RelError;
pub use expr::RelExpr;
pub use program::{canonicalize_fresh, FoProgram, FoStatement};
pub use relation::{RelDatabase, Relation};
