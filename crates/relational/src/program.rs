//! The language `FO + while + new` (paper §3.5 / §4.1, citing Van den
//! Bussche et al. [3]): relational algebra assignments, an iteration
//! construct, and tuple-level object creation. This is the source language
//! of the Theorem 4.1 simulation and the engine behind the canonical-
//! representation normal form of Theorem 4.4.

use crate::error::{RelError, Result};
use crate::expr::RelExpr;
use crate::relation::{RelDatabase, Relation};
use tabular_core::{interner, Symbol};

/// A statement of `FO + while + new`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum FoStatement {
    /// `T := expr`.
    Assign {
        /// Result relation name.
        target: Symbol,
        /// Right-hand side.
        expr: RelExpr,
    },
    /// `T := new_attr(source)`: extend `source` with a fresh value per
    /// tuple under a new attribute (object creation).
    New {
        /// Result relation name.
        target: Symbol,
        /// Source relation name.
        source: Symbol,
        /// New attribute.
        attr: Symbol,
    },
    /// `while cond ≠ ∅ do body od`.
    While {
        /// Loop condition: a relation name.
        cond: Symbol,
        /// Loop body.
        body: Vec<FoStatement>,
    },
}

/// An `FO + while + new` program.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct FoProgram {
    /// Statements, executed in order.
    pub statements: Vec<FoStatement>,
}

impl FoProgram {
    /// Empty program.
    pub fn new() -> FoProgram {
        FoProgram::default()
    }

    /// Builder: assignment.
    pub fn assign(mut self, target: &str, expr: RelExpr) -> FoProgram {
        self.statements.push(FoStatement::Assign {
            target: Symbol::name(target),
            expr,
        });
        self
    }

    /// Builder: object creation.
    pub fn new_ids(mut self, target: &str, source: &str, attr: &str) -> FoProgram {
        self.statements.push(FoStatement::New {
            target: Symbol::name(target),
            source: Symbol::name(source),
            attr: Symbol::name(attr),
        });
        self
    }

    /// Builder: while loop.
    pub fn while_nonempty(mut self, cond: &str, body: FoProgram) -> FoProgram {
        self.statements.push(FoStatement::While {
            cond: Symbol::name(cond),
            body: body.statements,
        });
        self
    }

    /// Run the program directly on a relational database (the reference
    /// semantics). `max_while_iters` bounds every loop.
    pub fn run(&self, db: &RelDatabase, max_while_iters: usize) -> Result<RelDatabase> {
        let mut state = db.clone();
        run_statements(&self.statements, &mut state, max_while_iters)?;
        Ok(state)
    }
}

fn run_statements(stmts: &[FoStatement], db: &mut RelDatabase, max_iters: usize) -> Result<()> {
    for stmt in stmts {
        match stmt {
            FoStatement::Assign { target, expr } => {
                let rel = expr.eval(db)?.with_name(*target);
                db.set(rel);
            }
            FoStatement::New {
                target,
                source,
                attr,
            } => {
                let src = db
                    .get(*source)
                    .ok_or(RelError::MissingRelation(*source))?
                    .clone();
                let mut attrs = src.attrs().to_vec();
                attrs.push(*attr);
                let mut out = Relation::empty(*target, attrs)?;
                for t in src.tuples() {
                    let mut row = t.clone();
                    row.push(Symbol::fresh_value());
                    out.insert(row)?;
                }
                db.set(out);
            }
            FoStatement::While { cond, body } => {
                let mut iters = 0usize;
                while db.get(*cond).is_some_and(|r| !r.is_empty()) {
                    iters += 1;
                    if iters > max_iters {
                        return Err(RelError::WhileLimit(max_iters));
                    }
                    run_statements(body, db, max_iters)?;
                }
            }
        }
    }
    Ok(())
}

/// Replace the machine-generated fresh values of a database by
/// position-canonical placeholders, so that two runs of a program with
/// `new` statements can be compared for equality *up to the choice of new
/// values* — the paper's determinacy condition (§4.1, condition (iv)).
///
/// Tuples are ordered by their non-fresh content; fresh values are then
/// numbered in order of first appearance. This yields a true canonical
/// form whenever tuples are distinguishable by their non-fresh parts
/// (which holds for tagging-style programs, where ids are attached to
/// existing tuples).
pub fn canonicalize_fresh(db: &RelDatabase) -> RelDatabase {
    let mut out = RelDatabase::new();
    for rel in db.relations() {
        let rel = rel.canonical();
        // Sort tuples by fresh-masked content.
        let masked = |t: &[Symbol]| -> Vec<Option<Symbol>> {
            t.iter()
                .map(|&s| match s.text() {
                    Some(text) if interner::is_reserved(text) => None,
                    _ => Some(s),
                })
                .collect()
        };
        let mut tuples: Vec<Vec<Symbol>> = rel.tuples().cloned().collect();
        tuples.sort_by(|a, b| {
            let (ma, mb) = (masked(a), masked(b));
            ma.iter()
                .zip(&mb)
                .map(|(x, y)| cmp_opt(*x, *y))
                .find(|c| *c != std::cmp::Ordering::Equal)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let mut mapping: Vec<(Symbol, Symbol)> = Vec::new();
        let mut renumber = |s: Symbol| -> Symbol {
            match s.text() {
                Some(text) if interner::is_reserved(text) => {
                    if let Some((_, to)) = mapping.iter().find(|(from, _)| *from == s) {
                        *to
                    } else {
                        let to = Symbol::value(&format!("§{}", mapping.len()));
                        mapping.push((s, to));
                        to
                    }
                }
                _ => s,
            }
        };
        let mut canon = Relation::empty(rel.name(), rel.attrs().to_vec()).expect("attrs ok");
        for t in tuples {
            canon
                .insert(t.into_iter().map(&mut renumber).collect())
                .expect("arity preserved");
        }
        out.set(canon);
    }
    out
}

fn cmp_opt(a: Option<Symbol>, b: Option<Symbol>) -> std::cmp::Ordering {
    match (a, b) {
        (None, None) => std::cmp::Ordering::Equal,
        (None, Some(_)) => std::cmp::Ordering::Less,
        (Some(_), None) => std::cmp::Ordering::Greater,
        (Some(x), Some(y)) => x.canonical_cmp(y),
    }
}

/// The classic `FO + while` example: the transitive closure of an edge
/// relation `E(From, To)`, left in `TC(From, To)`. Used across tests and
/// benches as a canonical iterative workload.
pub fn transitive_closure_program() -> FoProgram {
    // TC := E
    // Delta := E
    // while Delta ≠ ∅ do
    //   Next  := π_{From,To}( σ_{To=Mid'} hmm — composed via rename/join )
    //   Step  := π_{From,To}(σ_{Mid=Mid2}(ρ(TC) × ρ(E)))
    //   Delta := Step \ TC
    //   TC    := TC ∪ Delta
    // od
    let step = RelExpr::rel("TC")
        .rename("To", "Mid")
        .times(RelExpr::rel("E").rename("From", "Mid2").rename("To", "To2"))
        .select("Mid", "Mid2")
        .project(&["From", "To2"])
        .rename("To2", "To");
    FoProgram::new()
        .assign("TC", RelExpr::rel("E"))
        .assign("Delta", RelExpr::rel("E"))
        .while_nonempty(
            "Delta",
            FoProgram::new()
                .assign("Step", step)
                .assign("Delta", RelExpr::rel("Step").minus(RelExpr::rel("TC")))
                .assign("TC", RelExpr::rel("TC").union(RelExpr::rel("Delta"))),
        )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assignment_and_while_compute_transitive_closure() {
        let db = RelDatabase::from_relations([Relation::new(
            "E",
            &["From", "To"],
            &[&["a", "b"], &["b", "c"], &["c", "d"]],
        )]);
        let out = transitive_closure_program().run(&db, 100).unwrap();
        let tc = out.get_str("TC").unwrap();
        assert_eq!(tc.len(), 6); // ab bc cd ac bd ad
        assert!(tc.contains(&[Symbol::value("a"), Symbol::value("d")]));
        assert!(!tc.contains(&[Symbol::value("d"), Symbol::value("a")]));
    }

    #[test]
    fn while_limit_guards_divergence() {
        // Body never empties the condition relation.
        let db = RelDatabase::from_relations([Relation::new("R", &["A"], &[&["1"]])]);
        let p =
            FoProgram::new().while_nonempty("R", FoProgram::new().assign("R", RelExpr::rel("R")));
        assert!(matches!(p.run(&db, 10), Err(RelError::WhileLimit(10))));
    }

    #[test]
    fn new_creates_distinct_ids_per_tuple() {
        let db = RelDatabase::from_relations([Relation::new("R", &["A"], &[&["1"], &["2"]])]);
        let p = FoProgram::new().new_ids("T", "R", "Id");
        let out = p.run(&db, 10).unwrap();
        let t = out.get_str("T").unwrap();
        assert_eq!(t.arity(), 2);
        assert_eq!(t.len(), 2);
        let ids: Vec<Symbol> = t.tuples().map(|tup| tup[1]).collect();
        assert_ne!(ids[0], ids[1]);
    }

    #[test]
    fn canonicalize_fresh_makes_runs_comparable() {
        let db = RelDatabase::from_relations([Relation::new("R", &["A"], &[&["1"], &["2"]])]);
        let p = FoProgram::new().new_ids("T", "R", "Id");
        let run1 = canonicalize_fresh(&p.run(&db, 10).unwrap());
        let run2 = canonicalize_fresh(&p.run(&db, 10).unwrap());
        assert!(run1.equiv(&run2));
    }

    #[test]
    fn canonicalize_fresh_keeps_ordinary_values() {
        let db = RelDatabase::from_relations([Relation::new("R", &["A"], &[&["1"]])]);
        let c = canonicalize_fresh(&db);
        assert!(c.get_str("R").unwrap().contains(&[Symbol::value("1")]));
    }
}
