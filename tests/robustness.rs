//! Robustness suites: parsers and decoders must never panic on arbitrary
//! input — they return typed errors — and evaluation limits must hold
//! under adversarial programs.

mod common;

use proptest::prelude::*;
use tables_paradigm::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The tabular algebra parser returns Ok or Err, never panics, on
    /// arbitrary strings over its alphabet.
    #[test]
    fn ta_parser_never_panics(src in "[A-Za-z0-9_<\\-\\(\\)\\[\\]\\{\\},\\\\*:=\" \n]{0,80}") {
        let _ = tables_paradigm::algebra::parser::parse(&src);
    }

    /// Same for the SchemaLog parser.
    #[test]
    fn schemalog_parser_never_panics(src in "[A-Za-z0-9_\\[\\]:>\\-,\\.=!< \n]{0,80}") {
        let _ = tables_paradigm::schemalog::parser::parse(&src);
    }

    /// Same for the CSV reader.
    #[test]
    fn csv_reader_never_panics(src in "[A-Za-z0-9_,\"\n:]{0,120}") {
        let _ = tables_paradigm::core::io::from_csv(&src);
    }

    /// Whatever the TA parser accepts, the pretty-printer round-trips.
    #[test]
    fn accepted_programs_round_trip(src in "[A-Za-z <\\-\\(\\)\\[\\]\\{\\},]{0,60}") {
        if let Ok(p) = tables_paradigm::algebra::parser::parse(&src) {
            let rendered = tables_paradigm::algebra::pretty::render(&p);
            let p2 = tables_paradigm::algebra::parser::parse(&rendered)
                .expect("rendered output must re-parse");
            prop_assert_eq!(p, p2);
        }
    }

    /// Decoding a random "canonical representation" either succeeds or
    /// reports a typed error — never panics.
    #[test]
    fn decode_never_panics(
        data in proptest::collection::vec((0u8..6, 0u8..6, 0u8..6, 0u8..6), 0..12),
        map in proptest::collection::vec((0u8..6, 0u8..8), 0..12),
    ) {
        let mut d = Relation::new("Data", &["Tbl", "Row", "Col", "Val"], &[]);
        for (a, b, c, v) in data {
            let _ = d.insert(vec![
                Symbol::value(&format!("i{a}")),
                Symbol::value(&format!("i{b}")),
                Symbol::value(&format!("i{c}")),
                Symbol::value(&format!("i{v}")),
            ]);
        }
        let mut m = Relation::new("Map", &["Id", "Entry"], &[]);
        for (id, e) in map {
            let _ = m.insert(vec![
                Symbol::value(&format!("i{id}")),
                Symbol::value(&format!("e{e}")),
            ]);
        }
        let rep = RelDatabase::from_relations([d, m]);
        let _ = tables_paradigm::canonical::decode(&rep);
    }
}

/// Adversarial interpreter programs hit limits, not stack overflows or
/// unbounded memory.
#[test]
fn interpreter_limits_hold() {
    use tables_paradigm::algebra::parser::parse;
    let db = Database::from_tables([Table::relational("R", &["A"], &[&["1"], &["2"]])]);
    let tight = EvalLimits {
        max_while_iters: 3,
        max_setnew_rows: 16,
        max_tables: 8,
        max_cells: 1000,
        ..EvalLimits::default()
    };

    // Diverging while.
    let p = parse("while R do R <- COPY(R) end").unwrap();
    assert!(run(&p, &db, &tight).is_err());

    // Exponential set-new beyond the row budget.
    let big = Database::from_tables([Table::relational(
        "R",
        &["A"],
        &[&["1"], &["2"], &["3"], &["4"], &["5"], &["6"], &["7"]],
    )]);
    let p = parse("T <- SETNEW[Tag](R)").unwrap();
    assert!(run(&p, &big, &tight).is_err());

    // Doubling widths through repeated self-products exceed max_cells.
    let p = parse(
        "T <- PRODUCT(R, R)
         T <- PRODUCT(T, T)
         T <- PRODUCT(T, T)
         T <- PRODUCT(T, T)
         T <- PRODUCT(T, T)",
    )
    .unwrap();
    assert!(run(&p, &db, &tight).is_err());

    // Split flooding the table budget. (The table keeps a second column:
    // splitting a one-column table produces zero-width tables that are
    // all identical and collapse under set semantics.)
    let wide = Database::from_tables([Table::relational(
        "R",
        &["A", "B"],
        &[
            &["1", "x"],
            &["2", "x"],
            &["3", "x"],
            &["4", "x"],
            &["5", "x"],
            &["6", "x"],
            &["7", "x"],
            &["8", "x"],
            &["9", "x"],
        ],
    )]);
    let p = parse("T <- SPLIT[on {A}](R)").unwrap();
    assert!(run(&p, &wide, &tight).is_err());
}

/// The delta `while` strategy enforces the same limits as the naive one —
/// the same typed error, with the same numbers, at the same point — under
/// both serial and fully-sharded execution.
#[test]
fn delta_limits_match_naive_across_shard_configs() {
    use tables_paradigm::algebra::parser::parse;

    let limits = |strategy, parallel_threshold| EvalLimits {
        max_while_iters: 3,
        max_cells: 200,
        while_strategy: strategy,
        parallel_threshold,
        ..EvalLimits::default()
    };
    let configs = [
        (WhileStrategy::Naive, usize::MAX),
        (WhileStrategy::Naive, 1),
        (WhileStrategy::Delta, usize::MAX),
        (WhileStrategy::Delta, 1),
    ];

    // A delta-safe diverging body: `R` never changes, so the delta engine
    // skips the statement on every pass after the first — iterations must
    // still count toward `max_while_iters`.
    let db = Database::from_tables([Table::relational("R", &["A"], &[&["1"], &["2"]])]);
    let p = parse("while R do R <- COPY(R) end").unwrap();
    let errs: Vec<String> = configs
        .iter()
        .map(|&(s, t)| run(&p, &db, &limits(s, t)).unwrap_err().to_string())
        .collect();
    assert!(errs[0].contains("while iterations"), "{}", errs[0]);
    assert!(errs[0].contains("> 3"), "{}", errs[0]);
    assert!(errs.iter().all(|e| e == &errs[0]), "{errs:?}");

    // A delta-safe body whose table doubles in width every iteration:
    // the cell budget must trip mid-loop, identically everywhere.
    let p = parse("while R do R <- PRODUCT(R, R) end").unwrap();
    let errs: Vec<String> = configs
        .iter()
        .map(|&(s, t)| run(&p, &db, &limits(s, t)).unwrap_err().to_string())
        .collect();
    assert!(errs[0].contains("cells per table"), "{}", errs[0]);
    assert!(errs[0].contains("> 200"), "{}", errs[0]);
    assert!(errs.iter().all(|e| e == &errs[0]), "{errs:?}");

    // Table-count flooding inside a loop: SPLIT is delta-safe, and the
    // `max_tables` check must fire mid-loop under the shard pool too.
    let wide = Database::from_tables([Table::relational(
        "R",
        &["A", "B"],
        &[
            &["1", "x"],
            &["2", "x"],
            &["3", "x"],
            &["4", "x"],
            &["5", "x"],
            &["6", "x"],
            &["7", "x"],
            &["8", "x"],
            &["9", "x"],
        ],
    )]);
    let tight_tables = |strategy, parallel_threshold| EvalLimits {
        max_tables: 8,
        while_strategy: strategy,
        parallel_threshold,
        ..limits(strategy, parallel_threshold)
    };
    let p = parse("while R do T <- SPLIT[on {A}](R) end").unwrap();
    let errs: Vec<String> = configs
        .iter()
        .map(|&(s, t)| run(&p, &wide, &tight_tables(s, t)).unwrap_err().to_string())
        .collect();
    assert!(errs[0].contains("tables in database"), "{}", errs[0]);
    assert!(errs.iter().all(|e| e == &errs[0]), "{errs:?}");
}

/// Errors surface as typed values with useful messages end to end.
#[test]
fn error_messages_are_actionable() {
    use tables_paradigm::algebra::parser::parse;
    let db = fixtures::sales_info1();
    // A non-singleton parameter.
    let p = parse("T <- RENAME[{Part, Region} -> X](Sales)").unwrap();
    let err = run(&p, &db, &EvalLimits::default()).unwrap_err();
    assert!(err.to_string().contains("exactly one symbol"), "{err}");

    // Arity mismatch reported with the operation name.
    let bad = Program::new().assign(Param::name("T"), OpKind::Union, vec![Param::name("Sales")]);
    let err = run(&bad, &db, &EvalLimits::default()).unwrap_err();
    assert!(err.to_string().contains("UNION"), "{err}");
}
