//! Cross-layer integration: the same data flowing through every substrate
//! of the repository — relational, tabular, canonical, SchemaLog, GOOD,
//! OLAP — with the invariants that tie them together.

mod common;

use tables_paradigm::canonical::{decode, encode};
use tables_paradigm::good::{embed, graph::Graph};
use tables_paradigm::prelude::*;
use tables_paradigm::schemalog::quads::QuadDb;

/// Relational → quads → relational → tabular → Rep → tabular: a grand
/// round trip across three encodings.
#[test]
fn grand_round_trip() {
    let rel_db = RelDatabase::from_relations([
        Relation::new(
            "sales",
            &["part", "region", "sold"],
            &[
                &["nuts", "east", "50"],
                &["bolts", "east", "70"],
                &["nuts", "west", "60"],
            ],
        ),
        Relation::new("hot", &["region"], &[&["east"]]),
    ]);

    // Through the quad view.
    let quads = QuadDb::from_relations(&rel_db);
    let back = quads.to_relations(&[Symbol::name("sales"), Symbol::name("hot")]);
    assert!(back.equiv(&rel_db));

    // Through the tabular embedding and the canonical representation.
    let tabular = rel_db.to_tabular();
    let rep = encode(&tabular);
    let decoded = decode(&rep).unwrap();
    assert!(decoded.equiv(&tabular));
    let rel_again =
        RelDatabase::from_tabular(&decoded, &[Symbol::name("sales"), Symbol::name("hot")]).unwrap();
    assert!(rel_again.equiv(&rel_db));
}

/// The GOOD embedding is itself a tabular database; encode it canonically
/// and come back.
#[test]
fn good_graph_through_the_canonical_representation() {
    let mut g = Graph::new();
    let a = g.add_node(Symbol::name("Person"));
    let b = g.add_node(Symbol::name("Person"));
    g.add_edge(a, Symbol::name("knows"), b);
    let db = embed::to_tabular(&g);
    let back = decode(&encode(&db)).unwrap();
    assert!(back.equiv(&db));
    let graph_again = embed::from_tabular(&back).unwrap();
    assert!(g.equiv(&graph_again));
}

/// CSV is a faithful interchange format for every Figure 1 table,
/// including through the CLI's conventions.
#[test]
fn csv_interchange_for_all_fixtures() {
    use tables_paradigm::core::io::{from_csv, to_csv};
    for db in [
        fixtures::sales_info1_full(),
        fixtures::sales_info2_full(),
        fixtures::sales_info3_full(),
        fixtures::sales_info4_full(),
    ] {
        let round: Database = db
            .tables()
            .iter()
            .map(|t| from_csv(&to_csv(t)).expect("csv round trip"))
            .collect();
        assert!(round.equiv(&db));
    }
}

/// An OLAP pivot computed four ways produces the same cross-tab: the TA
/// program, the hand-coded baseline, the §3.4 textual program, and a
/// federated run.
#[test]
fn pivot_four_ways() {
    use tables_paradigm::algebra::federation::Federation;
    use tables_paradigm::olap::baseline::pivot_direct;
    let rel = fixtures::make_sales_relation(9, 5);
    let limits = EvalLimits::default();

    let via_olap = pivot(&rel, Symbol::name("Region"), Symbol::name("Sold"), &limits).unwrap();
    let via_baseline = pivot_direct(&rel, Symbol::name("Region"), Symbol::name("Sold")).unwrap();

    let program = parse(
        "Sales <- GROUP[by {Region} on {Sold}](Sales)
         Sales <- CLEANUP[by {Part} on {_}](Sales)
         Sales <- PURGE[on {Sold} by {Region}](Sales)",
    )
    .unwrap();
    let db = Database::from_tables([rel.clone()]);
    let via_text = run(&program, &db, &limits).unwrap();
    let via_text = via_text.table_str("Sales").unwrap();

    let mut fed = Federation::new();
    fed.insert("branch", db.clone());
    let fed_program = parse(
        "branch.Sales <- GROUP[by {Region} on {Sold}](branch.Sales)
         branch.Sales <- CLEANUP[by {Part} on {_}](branch.Sales)
         branch.Sales <- PURGE[on {Sold} by {Region}](branch.Sales)",
    )
    .unwrap();
    let fed_out = fed.run_program(&fed_program, "main", &limits).unwrap();
    let via_fed = fed_out
        .member("branch")
        .unwrap()
        .table_str("Sales")
        .unwrap();

    assert!(via_olap.equiv(&via_baseline));
    assert!(via_olap.equiv(via_text));
    assert!(via_olap.equiv(via_fed));
}

/// The SchemaLog split and the tabular SPLIT produce the same partition of
/// the data (SchemaLog's dynamic heads vs the algebra's SPLIT).
#[test]
fn schemalog_split_matches_ta_split() {
    use tables_paradigm::schemalog::{
        eval::{eval, SlLimits, Strategy},
        parser::parse as sl_parse,
    };
    let rel_db = RelDatabase::from_relations([Relation::new(
        "sales",
        &["part", "region", "sold"],
        &[
            &["nuts", "east", "50"],
            &["bolts", "east", "70"],
            &["nuts", "west", "60"],
        ],
    )]);
    let quads = QuadDb::from_relations(&rel_db);
    let p = sl_parse(
        "R[T : part -> P, sold -> S] :-
            sales[T : region -> R], sales[T : part -> P], sales[T : sold -> S].",
    )
    .unwrap();
    let out = eval(&p, &quads, Strategy::SemiNaive, &SlLimits::default()).unwrap();
    let east = out.to_relations(&[Symbol::value("east")]);
    let east_rel = east.get(Symbol::value("east")).unwrap();
    assert_eq!(east_rel.len(), 2); // nuts, bolts

    // TA SPLIT over the embedded table gives the same east rows.
    let tabular = rel_db.to_tabular();
    let split = parse("sales <- SPLIT[on {region}](sales)").unwrap();
    let split_out = run(&split, &tabular, &EvalLimits::default()).unwrap();
    let east_table = split_out
        .tables_named(Symbol::name("sales"))
        .into_iter()
        .find(|t| t.get(1, 1) == Symbol::value("east"))
        .expect("east table");
    // Header row + two data rows.
    assert_eq!(east_table.height(), 3);
}
