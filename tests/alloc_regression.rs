//! Allocation regression for the structurally shared storage engine.
//!
//! Snapshots are the engine's whole reason to exist: the evaluator takes
//! one per run and the delta `while` strategy leans on handle sharing
//! every iteration, so a regression that silently reintroduces deep
//! copies would erase the engine's advantage without failing any
//! functional test. Two guards here:
//!
//! 1. A counting `#[global_allocator]` proves `Database::snapshot` hits
//!    the allocator **zero** times, no matter how large the database.
//! 2. The process-wide copy-on-write counter
//!    (`tabular_core::stats::cow_copies`) proves a delta `while` run
//!    whose body statements stop writing never materializes a cell
//!    buffer: snapshots stay handle-only when nobody writes.
//!
//! This file deliberately holds a single `#[test]`: both guards read
//! process-global counters, and a sibling test running on another thread
//! would perturb them.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

use tables_paradigm::core::stats;
use tables_paradigm::prelude::*;

/// Counts allocator hits (and bytes requested) while armed; delegates to
/// the system allocator.
struct CountingAlloc;

static ARMED: AtomicBool = AtomicBool::new(false);
static ALLOCS: AtomicUsize = AtomicUsize::new(0);
static BYTES: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            BYTES.fetch_add(layout.size(), Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            BYTES.fetch_add(new_size.saturating_sub(layout.size()), Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// A database big enough that any deep copy would be unmissable: 32
/// tables of 200×4 cells each.
fn big_database() -> Database {
    Database::from_tables((0..32).map(|t| {
        let rows: Vec<Vec<String>> = (0..200)
            .map(|i| (0..4).map(|j| format!("v{t}_{i}_{j}")).collect())
            .collect();
        let rows: Vec<Vec<&str>> = rows
            .iter()
            .map(|r| r.iter().map(String::as_str).collect())
            .collect();
        let rows: Vec<&[&str]> = rows.iter().map(Vec::as_slice).collect();
        let table = Table::relational(&format!("T{t}"), &["A", "B", "C", "D"], &rows);
        table.fingerprint(); // warm the cache so snapshots share it
        table
    }))
}

#[test]
fn snapshots_allocate_nothing_and_copy_no_cell_buffers() {
    // ------------------------------------------------------------------
    // Guard 1: snapshots never touch the allocator.
    // ------------------------------------------------------------------
    let db = big_database();
    const SNAPSHOTS: usize = 256;
    let mut snaps: Vec<Database> = Vec::with_capacity(SNAPSHOTS);

    let snap_base = stats::snapshots();
    let cow_base = stats::cow_copies();
    ALLOCS.store(0, Ordering::SeqCst);
    ARMED.store(true, Ordering::SeqCst);
    for _ in 0..SNAPSHOTS {
        snaps.push(db.snapshot());
    }
    ARMED.store(false, Ordering::SeqCst);

    assert_eq!(
        ALLOCS.load(Ordering::SeqCst),
        0,
        "Database::snapshot must be allocation-free"
    );
    assert_eq!(stats::snapshots() - snap_base, SNAPSHOTS as u64);
    assert_eq!(
        stats::cow_copies(),
        cow_base,
        "snapshots must not materialize cell buffers"
    );
    for snap in &snaps {
        assert!(snap.tables()[0].shares_cells_with(&db.tables()[0]));
    }
    drop(snaps);

    // ------------------------------------------------------------------
    // Guard 2: a `while` body that never writes copies no cell buffers,
    // however many iterations the loop spins. `T` is pre-seeded with
    // exactly what the body recomputes, so from iteration 2 on the delta
    // strategy skips the statement outright and the loop diverges into
    // the iteration limit — 50 iterations of snapshot-backed reads with
    // zero copy-on-write materializations.
    // ------------------------------------------------------------------
    let r = Table::relational("R", &["A", "B"], &[&["1", "x"], &["2", "y"]]);
    let s = Table::relational("S", &["C"], &[&["1"]]);
    let seeded_t = Table::relational("T", &["A", "B", "C"], &[&["1", "x", "1"], &["2", "y", "1"]]);
    let program = parse("while W do T <- PRODUCT(R, S) end").unwrap();
    let input = Database::from_tables([
        r.clone(),
        s.clone(),
        seeded_t,
        Table::relational("W", &["K"], &[&["go"]]),
    ]);
    let limits = EvalLimits {
        while_strategy: WhileStrategy::Delta,
        max_while_iters: 50,
        ..EvalLimits::default()
    };
    let cow_before = stats::cow_copies();
    let err = run(&program, &input, &limits).unwrap_err();
    assert!(
        err.to_string().contains("while"),
        "the non-writing loop diverges into the iteration limit, got: {err}"
    );
    assert_eq!(
        stats::cow_copies(),
        cow_before,
        "a non-writing while body must not trigger copy-on-write"
    );

    // ------------------------------------------------------------------
    // Guard 3: the same holds for a terminating run with observable
    // skips — every operation in this body builds its output buffer
    // fresh, so the whole run (snapshots, delta skips, commits) performs
    // zero copy-on-write materializations.
    // ------------------------------------------------------------------
    let program = parse(
        "while W do
           T <- PRODUCT(R, S)
           W <- DIFFERENCE(W2, X)
           W2 <- DIFFERENCE(W3, X)
           W3 <- DIFFERENCE(W3, W3)
         end",
    )
    .unwrap();
    let input = Database::from_tables([
        r,
        s,
        Table::relational("X", &["K"], &[&["other"]]),
        Table::relational("W", &["K"], &[&["go"]]),
        Table::relational("W2", &["K"], &[&["go"]]),
        Table::relational("W3", &["K"], &[&["go"]]),
    ]);
    let limits = EvalLimits {
        while_strategy: WhileStrategy::Delta,
        ..EvalLimits::default()
    };
    let (out, run_stats) = run_with_stats(&program, &input, &limits).unwrap();

    assert!(run_stats.snapshots >= 1, "the run snapshots its input");
    assert!(
        run_stats.while_delta_skipped > 0,
        "quiet body statements are delta-skipped"
    );
    assert_eq!(
        run_stats.cow_copies, 0,
        "fresh-building operations never trigger copy-on-write"
    );
    // The run left the caller's database untouched.
    assert_eq!(input.table_str("W").unwrap().height(), 1);
    assert_eq!(out.table_str("W").unwrap().height(), 0);

    // ------------------------------------------------------------------
    // Guard 4: a PRODUCT whose output would blow the cell limit by
    // ~1000× fails on the *pre-size estimate* — before the output buffer
    // reaches the allocator. Two 1000-row operands make a 1,000,001 ×
    // 5-cell product (≈5M cells ≥ 40 MB of symbols) against a 5,000-cell
    // limit; the bytes allocated while armed must stay orders of
    // magnitude below that buffer.
    // ------------------------------------------------------------------
    let rows: Vec<Vec<String>> = (0..1000)
        .map(|i| vec![format!("a{i}"), format!("b{i}")])
        .collect();
    let rows: Vec<Vec<&str>> = rows
        .iter()
        .map(|r| r.iter().map(String::as_str).collect())
        .collect();
    let rows: Vec<&[&str]> = rows.iter().map(Vec::as_slice).collect();
    let big_l = Table::relational("L", &["A", "B"], &rows);
    let big_r = Table::relational("R", &["C", "D"], &rows);
    let input = Database::from_tables([big_l, big_r]);
    let program = parse("P <- PRODUCT(L, R)").unwrap();
    let limits = EvalLimits {
        max_cells: 5_000,
        ..EvalLimits::default()
    };

    ALLOCS.store(0, Ordering::SeqCst);
    BYTES.store(0, Ordering::SeqCst);
    ARMED.store(true, Ordering::SeqCst);
    let err = run(&program, &input, &limits).unwrap_err();
    ARMED.store(false, Ordering::SeqCst);

    let msg = err.to_string();
    assert!(
        msg.contains("cells per table"),
        "oversized product must trip the cell limit, got: {msg}"
    );
    let bytes = BYTES.load(Ordering::SeqCst);
    assert!(
        bytes < 1 << 20,
        "the rejected product buffer must never reach the allocator \
         (allocated {bytes} bytes while armed)"
    );

    // ------------------------------------------------------------------
    // Guard 5: the fused join never materializes the intermediate
    // product. The same two 1000-row operands joined on a key pair
    // produce 1000 matching rows; unfused, SELECT-over-PRODUCT would
    // stage a 1,000,000-row, ≈40 MB intermediate. Peak allocation while
    // armed must stay O(|R| + |S| + |output|) — under 1 MB — and the
    // run must *succeed* under the default cell limit the staged
    // product would obliterate.
    // ------------------------------------------------------------------
    let key_rows: Vec<Vec<String>> = (0..1000)
        .map(|i| vec![format!("a{i}"), format!("k{i}")])
        .collect();
    let key_rows: Vec<Vec<&str>> = key_rows
        .iter()
        .map(|r| r.iter().map(String::as_str).collect())
        .collect();
    let key_rows: Vec<&[&str]> = key_rows.iter().map(Vec::as_slice).collect();
    let join_l = Table::relational("L", &["A", "B"], &key_rows);
    let join_r = Table::relational("R", &["C", "D"], &key_rows);
    let input = Database::from_tables([join_l, join_r]);
    let program = parse("T <- FUSEDJOIN[B = D](L, R)").unwrap();
    let limits = EvalLimits::default();

    ALLOCS.store(0, Ordering::SeqCst);
    BYTES.store(0, Ordering::SeqCst);
    ARMED.store(true, Ordering::SeqCst);
    let out = run(&program, &input, &limits).unwrap();
    ARMED.store(false, Ordering::SeqCst);

    assert_eq!(
        out.table_str("T").unwrap().height(),
        1000,
        "the key columns pair up one-to-one"
    );
    let bytes = BYTES.load(Ordering::SeqCst);
    assert!(
        bytes < 1 << 20,
        "fused join peak allocation must be O(|R| + |S| + |output|), \
         not O(|R|·|S|) (allocated {bytes} bytes while armed)"
    );

    // ------------------------------------------------------------------
    // Guard 6: renaming an attribute that does not occur, under the
    // table's own name, is a pure handle clone — zero allocations and
    // zero copy-on-write materializations.
    // ------------------------------------------------------------------
    let q = Table::relational("Q", &["A", "B"], &[&["1", "x"], &["2", "y"]]);
    let (absent, to, q_name) = (Symbol::name("Z"), Symbol::name("Z2"), q.name());
    let cow_before = stats::cow_copies();
    ALLOCS.store(0, Ordering::SeqCst);
    ARMED.store(true, Ordering::SeqCst);
    let renamed = tables_paradigm::algebra::ops::rename(&q, absent, to, q_name);
    ARMED.store(false, Ordering::SeqCst);
    assert_eq!(
        ALLOCS.load(Ordering::SeqCst),
        0,
        "renaming an absent attribute in place must be allocation-free"
    );
    assert_eq!(
        stats::cow_copies(),
        cow_before,
        "renaming an absent attribute in place must not copy the cell buffer"
    );
    assert!(renamed.shares_cells_with(&q));

    // ------------------------------------------------------------------
    // Guard 7: the fused restructuring kernel never materializes the
    // grouped intermediate. Pivoting a 128×32 fact table stages a
    // ≈9.4M-cell grouped table (≥75 MB of symbols) through GROUP →
    // CLEAN-UP → PURGE; the fused kernel goes straight to the ≈4.4K-cell
    // cross-tab, so its allocation while armed must stay a small
    // constant multiple of the output. The staged program's allocation
    // is measured alongside for contrast: the gap *is* the intermediate.
    // ------------------------------------------------------------------
    let rel = fixtures::make_sales_relation(128, 32);
    let (col, val) = (Symbol::name("Region"), Symbol::name("Sold"));

    ALLOCS.store(0, Ordering::SeqCst);
    BYTES.store(0, Ordering::SeqCst);
    ARMED.store(true, Ordering::SeqCst);
    let fused_out = pivot(&rel, col, val, &EvalLimits::default()).unwrap();
    ARMED.store(false, Ordering::SeqCst);
    let fused_bytes = BYTES.load(Ordering::SeqCst);

    assert_eq!(fused_out.height(), 129, "one cross-tab row per part");
    assert_eq!(fused_out.width(), 33, "one cross-tab column per region");
    assert!(
        fused_bytes < 4 << 20,
        "fused pivot allocation must be O(|input| + |output|), not \
         O(|grouped intermediate|) (allocated {fused_bytes} bytes while armed)"
    );

    let target = Symbol::fresh_name();
    let staged_program = tables_paradigm::olap::pivot::pivot_program(
        rel.name(),
        col,
        val,
        &[Symbol::name("Part")],
        target,
    );
    let staged_input = Database::from_tables([rel]);
    let staged_limits = EvalLimits {
        max_cells: usize::MAX,
        ..EvalLimits::default()
    };

    ALLOCS.store(0, Ordering::SeqCst);
    BYTES.store(0, Ordering::SeqCst);
    ARMED.store(true, Ordering::SeqCst);
    let staged_out = run(&staged_program, &staged_input, &staged_limits).unwrap();
    ARMED.store(false, Ordering::SeqCst);
    let staged_bytes = BYTES.load(Ordering::SeqCst);

    assert!(
        staged_out.table(target).unwrap().equiv(&fused_out),
        "staged and fused pivots agree on the cross-tab"
    );
    assert!(
        staged_bytes > 16 * fused_bytes,
        "the staged pipeline materializes the grouped intermediate the \
         kernel avoids (staged {staged_bytes} vs fused {fused_bytes} bytes)"
    );

    // ------------------------------------------------------------------
    // Guard 8: partitioning a join must not raise peak allocation. The
    // serial kernel grows its output geometrically row by row (the
    // counting allocator sees every realloc growth delta, which sum to
    // roughly the final capacity); the partitioned kernel pre-counts
    // matches per shard and reserves the extension exactly once before
    // scattering, so with the pool spawned *before* arming, its armed
    // byte count must come in at or below the serial run's.
    // ------------------------------------------------------------------
    use tables_paradigm::algebra::ops;
    use tables_paradigm::algebra::pool::ShardPool;

    let probe_rows: Vec<Vec<String>> = (0..60_000)
        .map(|i| vec![format!("p{i}"), format!("k{}", i % 1000)])
        .collect();
    let probe_rows: Vec<Vec<&str>> = probe_rows
        .iter()
        .map(|r| r.iter().map(String::as_str).collect())
        .collect();
    let probe_rows: Vec<&[&str]> = probe_rows.iter().map(Vec::as_slice).collect();
    let probe = Table::relational("L", &["A", "B"], &probe_rows);
    let build_rows: Vec<Vec<String>> = (0..1000)
        .map(|j| vec![format!("k{j}"), format!("s{j}")])
        .collect();
    let build_rows: Vec<Vec<&str>> = build_rows
        .iter()
        .map(|r| r.iter().map(String::as_str).collect())
        .collect();
    let build_rows: Vec<&[&str]> = build_rows.iter().map(Vec::as_slice).collect();
    let build = Table::relational("R", &["C", "D"], &build_rows);
    let cols = ops::JoinCols { left: 2, right: 1 };
    let pool = ShardPool::new(4); // threads up and idle before arming

    ALLOCS.store(0, Ordering::SeqCst);
    BYTES.store(0, Ordering::SeqCst);
    ARMED.store(true, Ordering::SeqCst);
    let serial = ops::join(&probe, &build, cols, Symbol::name("T"));
    ARMED.store(false, Ordering::SeqCst);
    let serial_bytes = BYTES.load(Ordering::SeqCst);

    ALLOCS.store(0, Ordering::SeqCst);
    BYTES.store(0, Ordering::SeqCst);
    ARMED.store(true, Ordering::SeqCst);
    let (partitioned, _report) = ops::join_partitioned(
        &probe,
        &build,
        cols,
        Symbol::name("T"),
        &pool,
        4,
        &|| Ok(()),
        &mut |_| Ok(()),
    )
    .unwrap();
    ARMED.store(false, Ordering::SeqCst);
    let partitioned_bytes = BYTES.load(Ordering::SeqCst);

    assert_eq!(partitioned, serial, "partitioned join output must match");
    assert!(
        partitioned_bytes <= serial_bytes,
        "partitioning must not raise peak allocation: the exact pre-sized \
         resize should undercut serial geometric growth (partitioned \
         {partitioned_bytes} vs serial {serial_bytes} bytes)"
    );
}
