//! Integration tests for the resource governor: deadlines, run-cell
//! budgets, and cooperative cancellation (DESIGN.md, "Resource
//! governance").
//!
//! The contract under test: on any budget trip, evaluation degrades
//! gracefully — the returned `BudgetExceeded` error carries the partial
//! `EvalStats` and partial `Trace` collected up to the trip, with the
//! interrupted span drained as `aborted` — and the cell-budget trip
//! point is deterministic for a given program and budget across every
//! evaluation strategy (naive/delta × serial/sharded) and through every
//! stacked path (federation, the Theorem 4.1 compiled path, the
//! SchemaLog translated path, the OLAP helpers).

use std::time::Duration;

use tables_paradigm::algebra::{
    governor, parser::parse, AlgebraError, Budget, CancelToken, EvalLimits, Federation, PartialRun,
    TraceLevel, WhileStrategy,
};
use tables_paradigm::core::{Database, Symbol, Table};
use tables_paradigm::prelude::{run_governed_traced, Trace};

/// The four strategy × sharding configurations every budget behavior
/// must agree on. Threshold 2 forces the shard pool on tiny statements.
const CONFIGS: [(WhileStrategy, usize); 4] = [
    (WhileStrategy::Naive, usize::MAX),
    (WhileStrategy::Naive, 2),
    (WhileStrategy::Delta, usize::MAX),
    (WhileStrategy::Delta, 2),
];

fn limits(strategy: WhileStrategy, threshold: usize) -> EvalLimits {
    EvalLimits {
        while_strategy: strategy,
        parallel_threshold: threshold,
        trace: TraceLevel::Spans,
        ..EvalLimits::default()
    }
}

/// A loop that spins forever without growing: the swap keeps `A`
/// changing every iteration, so the delta strategy can never skip the
/// body, and no count or cell limit is approached — only the governor
/// can stop it.
fn spin_program() -> tables_paradigm::prelude::Program {
    parse(
        "while W do
           T <- COPY(A)
           A <- COPY(B)
           B <- COPY(T)
         end",
    )
    .unwrap()
}

fn spin_database() -> Database {
    Database::from_tables([
        Table::relational("A", &["X"], &[&["a"]]),
        Table::relational("B", &["X"], &[&["b"]]),
        Table::relational("W", &["K"], &[&["go"]]),
    ])
}

/// A loop whose work table doubles in rows (and widens) every
/// iteration: production grows geometrically, so a cell budget trips it
/// after a handful of deterministic iterations.
fn grow_program() -> tables_paradigm::prelude::Program {
    parse("while W do W <- PRODUCT(W, G) end").unwrap()
}

fn grow_database() -> Database {
    Database::from_tables([
        Table::relational("W", &["A"], &[&["w"]]),
        Table::relational("G", &["B"], &[&["x"], &["y"]]),
    ])
}

fn unwrap_trip(err: AlgebraError) -> (&'static str, usize, usize, Box<PartialRun>) {
    match err {
        AlgebraError::BudgetExceeded {
            resource,
            spent,
            limit,
            partial,
        } => (resource, spent, limit, partial),
        other => panic!("expected BudgetExceeded, got {other}"),
    }
}

// ---------------------------------------------------------------------
// A hand-written JSON well-formedness validator (no serde_json in the
// offline vendor set): validates the complete grammar of
// `Trace::to_json` output — objects, arrays, strings with escapes,
// numbers, and the literals.
// ---------------------------------------------------------------------

fn validate_json(s: &str) -> Result<(), String> {
    let bytes = s.as_bytes();
    let mut pos = 0usize;
    skip_ws(bytes, &mut pos);
    parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(())
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<(), String> {
    match b.get(*pos) {
        Some(b'{') => parse_object(b, pos),
        Some(b'[') => parse_array(b, pos),
        Some(b'"') => parse_string(b, pos),
        Some(b't') => parse_literal(b, pos, b"true"),
        Some(b'f') => parse_literal(b, pos, b"false"),
        Some(b'n') => parse_literal(b, pos, b"null"),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(b, pos),
        other => Err(format!("unexpected {other:?} at byte {pos}")),
    }
}

fn parse_literal(b: &[u8], pos: &mut usize, lit: &[u8]) -> Result<(), String> {
    if b[*pos..].starts_with(lit) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("bad literal at byte {pos}"))
    }
}

fn parse_object(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // '{'
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, pos);
        parse_string(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {pos}"));
        }
        *pos += 1;
        skip_ws(b, pos);
        parse_value(b, pos)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(());
            }
            other => return Err(format!("expected ',' or '}}', got {other:?} at byte {pos}")),
        }
    }
}

fn parse_array(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // '['
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, pos);
        parse_value(b, pos)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(());
            }
            other => return Err(format!("expected ',' or ']', got {other:?} at byte {pos}")),
        }
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<(), String> {
    if b.get(*pos) != Some(&b'"') {
        return Err(format!("expected '\"' at byte {pos}"));
    }
    *pos += 1;
    while let Some(&c) = b.get(*pos) {
        match c {
            b'"' => {
                *pos += 1;
                return Ok(());
            }
            b'\\' => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => *pos += 1,
                    Some(b'u') => {
                        *pos += 1;
                        for _ in 0..4 {
                            if !b.get(*pos).is_some_and(u8::is_ascii_hexdigit) {
                                return Err(format!("bad \\u escape at byte {pos}"));
                            }
                            *pos += 1;
                        }
                    }
                    other => return Err(format!("bad escape {other:?} at byte {pos}")),
                }
            }
            c if c < 0x20 => return Err(format!("raw control byte at {pos}")),
            _ => *pos += 1,
        }
    }
    Err("unterminated string".into())
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<(), String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while b.get(*pos).is_some_and(u8::is_ascii_digit) {
        *pos += 1;
    }
    if b.get(*pos) == Some(&b'.') {
        *pos += 1;
        while b.get(*pos).is_some_and(u8::is_ascii_digit) {
            *pos += 1;
        }
    }
    if matches!(b.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(b.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        while b.get(*pos).is_some_and(u8::is_ascii_digit) {
            *pos += 1;
        }
    }
    if *pos == start || (*pos == start + 1 && b[start] == b'-') {
        return Err(format!("empty number at byte {start}"));
    }
    Ok(())
}

/// The partial-trace contract: non-empty, well-formed JSON, and the
/// interrupted work is marked `aborted`.
fn assert_partial_trace(trace: &Trace, context: &str) {
    assert!(!trace.is_empty(), "{context}: partial trace is empty");
    validate_json(&trace.to_json())
        .unwrap_or_else(|e| panic!("{context}: partial trace JSON malformed: {e}"));
    assert!(
        trace
            .spans()
            .any(|s| s.decision == tables_paradigm::algebra::DeltaDecision::Aborted),
        "{context}: no aborted span marks the trip"
    );
}

// ---------------------------------------------------------------------
// Planner × governor: charges follow the planned shapes
// ---------------------------------------------------------------------

/// A pessimal 3-way product chain: evaluated as written, the first
/// product materializes |L|·|M| rows and trips a cell budget; the
/// cost-based planner reorders it through the 1-row table `N` and fuses
/// the closing selection, so the planned run fits the same budget. This
/// pins the integration contract: governor charges land on the *planned*
/// statement shapes, not the source program's.
#[test]
fn planner_fits_a_pessimal_join_chain_into_a_budget_that_trips_unplanned() {
    use tables_paradigm::algebra::{run_planned_governed, Assignment, OpKind, Statement};
    use tables_paradigm::prelude::{run_governed, Param, Program};

    let rel = |name: &str, attrs: &[&str], rows: Vec<[String; 2]>| {
        let borrowed: Vec<Vec<&str>> = rows.iter().map(|r| vec![&*r[0], &*r[1]]).collect();
        let slices: Vec<&[&str]> = borrowed.iter().map(|r| &r[..]).collect();
        Table::relational(name, attrs, &slices)
    };
    let db = Database::from_tables([
        rel(
            "L",
            &["A", "X"],
            (0..8).map(|i| [format!("v{i}"), format!("x{i}")]).collect(),
        ),
        rel(
            "M",
            &["B", "Y"],
            (4..12)
                .map(|i| [format!("v{i}"), format!("y{i}")])
                .collect(),
        ),
        Table::relational("N", &["C"], &[&["n"]]),
    ]);
    let s1 = Param::sym(Symbol::name("\u{1F}gv0a"));
    let s2 = Param::sym(Symbol::name("\u{1F}gv0b"));
    let program = Program {
        statements: vec![
            Statement::Assign(Assignment {
                target: s1.clone(),
                op: OpKind::Product,
                args: vec![Param::name("L"), Param::name("M")],
            }),
            Statement::Assign(Assignment {
                target: s2.clone(),
                op: OpKind::Product,
                args: vec![s1, Param::name("N")],
            }),
            Statement::Assign(Assignment {
                target: Param::name("Out"),
                op: OpKind::Select {
                    a: Param::name("A"),
                    b: Param::name("B"),
                },
                args: vec![s2],
            }),
        ],
    };
    // |L×M| = 64 rows × 4 cols = 325 cells: over budget as written.
    let budget = Budget::from_limits(&EvalLimits::default()).with_cell_budget(250);
    let (resource, _, _, _) = unwrap_trip(run_governed(&program, &db, &budget).unwrap_err());
    assert_eq!(resource, governor::RESOURCE_RUN_CELLS);
    let out = run_planned_governed(&program, &db, &budget)
        .expect("planned chain fits the budget the source program trips");
    let t = out.table_str("Out").expect("planned run produces Out");
    // A-values v4..v7 meet B-values: 4 joined rows survive the selection.
    assert_eq!(t.height(), 4);
}

// ---------------------------------------------------------------------
// Cancellation
// ---------------------------------------------------------------------

#[test]
fn precancelled_token_stops_before_any_iteration() {
    for (strategy, threshold) in CONFIGS {
        let token = CancelToken::new();
        token.cancel();
        let budget = Budget::from_limits(&limits(strategy, threshold)).with_cancel(token);
        let err = run_governed_traced(&spin_program(), &spin_database(), &budget).unwrap_err();
        assert_eq!(err.to_string(), "evaluation cancelled cooperatively");
        let (resource, _, _, partial) = unwrap_trip(err);
        assert_eq!(resource, governor::RESOURCE_CANCELLED);
        assert_eq!(
            partial.stats.while_iterations, 0,
            "{strategy:?}/{threshold}: a pre-cancelled run performs no iterations"
        );
    }
}

#[test]
fn cross_thread_cancel_stops_a_diverging_loop() {
    // `max_while_iters: usize::MAX` removes every count limit: only the
    // token can stop this loop, so there is no racing error to flake on.
    for (strategy, threshold) in CONFIGS {
        let mut lim = limits(strategy, threshold);
        lim.max_while_iters = usize::MAX;
        let token = CancelToken::new();
        let budget = Budget::from_limits(&lim).with_cancel(token.clone());
        let canceller = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(25));
            token.cancel();
        });
        let err = run_governed_traced(&spin_program(), &spin_database(), &budget).unwrap_err();
        canceller.join().unwrap();
        let (resource, _, _, partial) = unwrap_trip(err);
        assert_eq!(resource, governor::RESOURCE_CANCELLED);
        assert!(
            partial.stats.while_iterations > 0,
            "{strategy:?}/{threshold}: the loop ran until the cancel"
        );
        assert_partial_trace(&partial.trace, &format!("{strategy:?}/{threshold} cancel"));
    }
}

// ---------------------------------------------------------------------
// Deadline
// ---------------------------------------------------------------------

#[test]
fn deadline_trips_a_diverging_loop_with_partial_state() {
    let mut lim = limits(WhileStrategy::Delta, usize::MAX);
    lim.max_while_iters = usize::MAX;
    let budget = Budget::from_limits(&lim).with_deadline(Duration::from_millis(30));
    let err = run_governed_traced(&spin_program(), &spin_database(), &budget).unwrap_err();
    let msg = err.to_string();
    let (resource, spent, limit, partial) = unwrap_trip(err);
    assert_eq!(resource, governor::RESOURCE_DEADLINE);
    assert_eq!(limit, 30);
    assert!(spent >= 30, "spent {spent}ms is at least the 30ms deadline");
    assert!(msg.contains("wall-clock deadline"), "{msg}");
    assert!(partial.stats.while_iterations > 0);
    assert_partial_trace(&partial.trace, "deadline");
}

// ---------------------------------------------------------------------
// Cell budget: deterministic trips, on every path
// ---------------------------------------------------------------------

#[test]
fn cell_budget_trip_point_is_deterministic_across_strategies() {
    let mut reports: Vec<(String, usize, usize, usize)> = Vec::new();
    for (strategy, threshold) in CONFIGS {
        let budget = Budget::from_limits(&limits(strategy, threshold)).with_cell_budget(500);
        let err = run_governed_traced(&grow_program(), &grow_database(), &budget).unwrap_err();
        let msg = err.to_string();
        let (resource, _, _, partial) = unwrap_trip(err);
        assert_eq!(resource, governor::RESOURCE_RUN_CELLS);
        assert_partial_trace(
            &partial.trace,
            &format!("{strategy:?}/{threshold} cell budget"),
        );
        reports.push((
            msg,
            partial.stats.while_iterations,
            partial.stats.tables_produced,
            partial.stats.max_table_cells,
        ));
    }
    let first = &reports[0];
    for r in &reports[1..] {
        assert_eq!(
            r, first,
            "same program, same budget: same trip point across strategies"
        );
    }
}

#[test]
fn cell_budget_trips_the_federated_path() {
    let mut fed = Federation::new();
    fed.insert("site", grow_database());
    let program = parse("while site.W do site.W <- PRODUCT(site.W, site.G) end").unwrap();
    let budget =
        Budget::from_limits(&limits(WhileStrategy::Delta, usize::MAX)).with_cell_budget(500);
    let err = fed
        .run_program_governed(&program, "main", &budget)
        .unwrap_err();
    let (resource, _, _, partial) = unwrap_trip(err);
    assert_eq!(resource, governor::RESOURCE_RUN_CELLS);
    assert!(partial.stats.while_iterations > 0);
    assert_partial_trace(&partial.trace, "federated");
}

#[test]
fn federation_split_divides_the_budget_and_cancels_siblings_on_trip() {
    let mut fed = Federation::new();
    fed.insert("east", grow_database());
    fed.insert("west", grow_database());
    let budget =
        Budget::from_limits(&limits(WhileStrategy::Naive, usize::MAX)).with_cell_budget(600);
    let err = fed.run_each_governed(&grow_program(), &budget).unwrap_err();
    let (resource, _, limit, _) = unwrap_trip(err);
    assert_eq!(resource, governor::RESOURCE_RUN_CELLS);
    assert_eq!(limit, 300, "each of the 2 sites gets half the cell budget");
    assert!(
        budget.cancel.is_cancelled(),
        "the first trip cancels the shared token"
    );

    // An untripped split run completes normally.
    let mut fed = Federation::new();
    fed.insert("east", spin_database());
    fed.insert("west", spin_database());
    let p = parse("T <- COPY(A)").unwrap();
    let out = fed.run_each_governed(&p, &Budget::default()).unwrap();
    assert!(out.member("east").unwrap().table_str("T").is_some());
    assert!(out.member("west").unwrap().table_str("T").is_some());
}

#[test]
fn cell_budget_trips_the_compiled_theorem41_path() {
    use tables_paradigm::relational::{compile::run_compiled_governed, RelDatabase, Relation};

    let db = RelDatabase::from_relations([Relation::new(
        "E",
        &["From", "To"],
        &[&["a", "b"], &["b", "c"], &["c", "d"], &["d", "a"]],
    )]);
    let p = tables_paradigm::relational::program::transitive_closure_program();
    let budget =
        Budget::from_limits(&limits(WhileStrategy::Delta, usize::MAX)).with_cell_budget(400);
    let err = run_compiled_governed(&p, &db, &["TC"], &budget).unwrap_err();
    let msg = err.to_string();
    assert!(
        msg.contains("run cell budget"),
        "compiled path surfaces the trip: {msg}"
    );
    // The same run with an unlimited budget succeeds.
    let unlimited = Budget::from_limits(&limits(WhileStrategy::Delta, usize::MAX));
    let (out, stats, _) = run_compiled_governed(&p, &db, &["TC"], &unlimited).unwrap();
    assert_eq!(out.get_str("TC").unwrap().len(), 16);
    assert!(stats.while_iterations > 0);
}

#[test]
fn cell_budget_trips_the_schemalog_translated_path() {
    use tables_paradigm::relational::{RelDatabase, Relation};
    use tables_paradigm::schemalog::{
        quads::QuadDb,
        translate::{run_translated_governed, run_translated_traced},
    };

    let input = QuadDb::from_relations(&RelDatabase::from_relations([Relation::new(
        "edge",
        &["from", "to"],
        &[&["a", "b"], &["b", "c"], &["c", "d"], &["d", "a"]],
    )]));
    let src = "path[T : from -> F, to -> X] :- edge[T : from -> F, to -> X].
               path[T : from -> F, to -> X] :- path[T : from -> F, to -> Y], edge[T : from -> Y, to -> X].";
    let p = tables_paradigm::schemalog::parser::parse(src).unwrap();
    let budget =
        Budget::from_limits(&limits(WhileStrategy::Delta, usize::MAX)).with_cell_budget(2_000);
    let err = run_translated_governed(&p, &input, &budget).unwrap_err();
    assert!(
        err.to_string().contains("run cell budget"),
        "SchemaLog path surfaces the trip: {err}"
    );
    // Sanity: ungoverned translation of the same program succeeds.
    let (out, _, _) =
        run_translated_traced(&p, &input, &limits(WhileStrategy::Delta, usize::MAX)).unwrap();
    assert!(!out.is_empty());
}

#[test]
fn cell_budget_trips_the_olap_pivot_path() {
    use tables_paradigm::core::fixtures;
    use tables_paradigm::olap::{pivot, pivot_governed};

    let rel = fixtures::sales_relation();
    let budget = Budget::default().with_cell_budget(1);
    let err =
        pivot_governed(&rel, Symbol::name("Region"), Symbol::name("Sold"), &budget).unwrap_err();
    assert!(
        err.to_string().contains("run cell budget"),
        "OLAP path surfaces the trip: {err}"
    );
    // The governed helper with an unlimited budget matches the plain one.
    let plain = pivot(
        &rel,
        Symbol::name("Region"),
        Symbol::name("Sold"),
        &EvalLimits::default(),
    )
    .unwrap();
    let governed = pivot_governed(
        &rel,
        Symbol::name("Region"),
        Symbol::name("Sold"),
        &Budget::default(),
    )
    .unwrap();
    assert!(plain.equiv(&governed));
}

#[test]
fn cell_budget_between_fused_output_and_staged_intermediate_separates_the_paths() {
    use tables_paradigm::algebra::optimize::fuse_restructure;
    use tables_paradigm::core::fixtures;

    // A 16×8 pivot: the staged chain materializes a ≈16,900-cell grouped
    // intermediate, while the fused kernel's largest table is the
    // ≈180-cell cross-tab. A run-cell budget of 2,000 sits squarely
    // between the two, so it *must* trip the staged program and *must
    // not* trip the fused one — the budget separation is exactly the
    // intermediate the kernel never builds.
    let rel = fixtures::make_sales_relation(16, 8);
    let target = Symbol::fresh_name();
    let staged = tables_paradigm::olap::pivot::pivot_program(
        rel.name(),
        Symbol::name("Region"),
        Symbol::name("Sold"),
        &[Symbol::name("Part")],
        target,
    );
    let fused = fuse_restructure(&staged);
    let db = Database::from_tables([rel]);

    let mut trips: Vec<(String, usize, usize)> = Vec::new();
    let mut outputs: Vec<Table> = Vec::new();
    for (strategy, threshold) in CONFIGS {
        let budget = Budget::from_limits(&limits(strategy, threshold)).with_cell_budget(2_000);

        let err = run_governed_traced(&staged, &db, &budget).unwrap_err();
        let msg = err.to_string();
        let (resource, _, _, partial) = unwrap_trip(err);
        assert_eq!(
            resource,
            governor::RESOURCE_RUN_CELLS,
            "{strategy:?}/{threshold}: the staged chain exhausts the budget"
        );
        assert_partial_trace(
            &partial.trace,
            &format!("{strategy:?}/{threshold} staged pivot"),
        );
        trips.push((
            msg,
            partial.stats.tables_produced,
            partial.stats.max_table_cells,
        ));

        let (out, stats, _) = run_governed_traced(&fused, &db, &budget).unwrap_or_else(|e| {
            panic!("{strategy:?}/{threshold}: the fused pivot fits the budget, got {e}")
        });
        assert!(
            stats.restructure_fused >= 1,
            "{strategy:?}/{threshold}: the single-pass kernel ran"
        );
        assert_eq!(
            stats.restructure_unfused, 0,
            "{strategy:?}/{threshold}: no staged fallback under the budget"
        );
        outputs.push(out.table(target).expect("fused pivot output").clone());
    }

    // Same program, same budget: the staged trip point is deterministic
    // across every strategy × sharding configuration…
    let first = &trips[0];
    for t in &trips[1..] {
        assert_eq!(t, first, "staged trip stats agree across configurations");
    }
    // …and every fused run produced the same cross-tab.
    for out in &outputs[1..] {
        assert_eq!(
            out, &outputs[0],
            "fused outputs agree across configurations"
        );
    }
}

// ---------------------------------------------------------------------
// Trip, raise, re-run: the limit audit of satellite 3
// ---------------------------------------------------------------------

#[test]
fn trip_raise_rerun_keeps_naive_and_delta_in_agreement() {
    // A terminating loop: W halves toward empty... simplest is the grow
    // program bounded by iteration count, which both strategies agree on.
    let program = grow_program();
    let db = grow_database();

    // First: trip a tight cell budget on both strategies.
    for strategy in [WhileStrategy::Naive, WhileStrategy::Delta] {
        let mut lim = limits(strategy, usize::MAX);
        lim.max_while_iters = 5;
        let tight = Budget::from_limits(&lim).with_cell_budget(100);
        let err = run_governed_traced(&program, &db, &tight).unwrap_err();
        assert!(matches!(err, AlgebraError::BudgetExceeded { .. }));
    }

    // Then: raise the budget so the run completes (the iteration limit
    // now ends the loop as a plain LimitExceeded in both strategies) and
    // assert the strategies still agree — a tripped run must not leave
    // state behind that skews a later evaluation.
    let mut outcomes = Vec::new();
    for strategy in [WhileStrategy::Naive, WhileStrategy::Delta] {
        let mut lim = limits(strategy, usize::MAX);
        lim.max_while_iters = 5;
        let roomy = Budget::from_limits(&lim).with_cell_budget(1_000_000);
        let err = run_governed_traced(&program, &db, &roomy).unwrap_err();
        outcomes.push(err.to_string());
    }
    assert_eq!(
        outcomes[0], outcomes[1],
        "Naive and Delta agree after the raise"
    );
    assert!(outcomes[0].contains("while"), "{}", outcomes[0]);

    // And a genuinely terminating program agrees on its output.
    let term = parse(
        "while W do
           Out <- PRODUCT(Out, G)
           W <- DIFFERENCE(W, W)
         end",
    )
    .unwrap();
    let tdb = Database::from_tables([
        Table::relational("W", &["K"], &[&["go"]]),
        Table::relational("Out", &["A"], &[&["o"]]),
        Table::relational("G", &["B"], &[&["x"], &["y"]]),
    ]);
    let mut finals = Vec::new();
    for strategy in [WhileStrategy::Naive, WhileStrategy::Delta] {
        let tight = Budget::from_limits(&limits(strategy, usize::MAX)).with_cell_budget(10);
        assert!(
            run_governed_traced(&term, &tdb, &tight).is_err(),
            "tight budget trips"
        );
        let roomy = Budget::from_limits(&limits(strategy, usize::MAX));
        let (out, _, _) = run_governed_traced(&term, &tdb, &roomy).unwrap();
        finals.push(out);
    }
    assert!(
        finals[0]
            .table_str("Out")
            .unwrap()
            .equiv(finals[1].table_str("Out").unwrap()),
        "strategies agree on the re-run output"
    );
}

// ---------------------------------------------------------------------
// Trips landing on the delta engine's partial-state paths: these used
// to sit next to `expect`/`unreachable!` sites; a trip must surface as
// a clean `BudgetExceeded`, never a panic, on every engine path.
// ---------------------------------------------------------------------

/// A chain graph `n0 → … → n_len` as a tabular database `E[A, B]`.
fn chain_db(len: usize) -> Database {
    let rows: Vec<[String; 2]> = (0..len)
        .map(|i| [format!("n{i}"), format!("n{}", i + 1)])
        .collect();
    let borrowed: Vec<Vec<&str>> = rows.iter().map(|r| vec![&*r[0], &*r[1]]).collect();
    let slices: Vec<&[&str]> = borrowed.iter().map(|r| &r[..]).collect();
    Database::from_tables([Table::relational("E", &["A", "B"], &slices)])
}

/// Transitive closure over `E` with the fused hash-join kernel in the
/// loop body — the workload whose delta evaluation takes the
/// incremental in-place append path.
fn tc_fused_program() -> tables_paradigm::prelude::Program {
    parse(
        "TC <- COPY(E)
         Frontier <- COPY(E)
         while Frontier do
           EStep <- COPY(E)
           RTC <- RENAME[A -> A0](TC)
           RTC <- RENAME[B -> B0](RTC)
           Matched <- FUSEDJOIN[B0 = A](RTC, EStep)
           Step <- PROJECT[{A0, B}](Matched)
           Step <- RENAME[A0 -> A](Step)
           Frontier <- DIFFERENCE(Step, TC)
           TC <- CLASSICALUNION(TC, Frontier)
         end",
    )
    .unwrap()
}

/// The delta engine's incremental *partitioned in-place append* commits
/// through `Database::update_named` with the governor charging per
/// partition — the engine path with the most partial state in flight
/// when a budget trips. The trip must land after incremental appends
/// have begun and still degrade into a clean partial report.
#[test]
fn cell_budget_trips_inside_the_delta_incremental_partitioned_append() {
    let db = chain_db(24);
    let mut lim = limits(WhileStrategy::Delta, usize::MAX);
    lim.max_while_iters = usize::MAX;
    lim.partition_threshold = 1; // force the partitioned kernel throughout
                                 // Generous enough for several iterations (so append lineage exists),
                                 // tight enough to trip well before the 24-chain closure completes.
    let budget = Budget::from_limits(&lim).with_cell_budget(20_000);
    let err = run_governed_traced(&tc_fused_program(), &db, &budget).unwrap_err();
    let (resource, _, _, partial) = unwrap_trip(err);
    assert_eq!(resource, governor::RESOURCE_RUN_CELLS);
    assert!(
        partial.stats.while_iterations >= 2,
        "the trip lands mid-loop: {} iterations",
        partial.stats.while_iterations
    );
    assert!(partial.stats.join_fused >= 1, "the fused kernel ran");
    assert!(
        partial.stats.partitioned_joins >= 1,
        "the partitioned kernel ran before the trip"
    );
    assert_partial_trace(&partial.trace, "delta incremental append");

    // The same program under an unlimited budget completes — a tripped
    // run leaves no process-wide state that poisons a retry.
    let unlimited = Budget::from_limits(&lim);
    let (out, stats, _) = run_governed_traced(&tc_fused_program(), &db, &unlimited).unwrap();
    assert_eq!(
        out.table_str("TC").unwrap().height(),
        24 * 25 / 2,
        "chain closure size"
    );
    assert!(stats.partitioned_joins >= 1);
}

/// After the first iteration every body statement delta-skips, and each
/// skip still charges the memoized production (keeping the trip point
/// identical to naive re-execution) — so the budget trips *during a
/// skip*, a path that touches the statement memos without executing
/// anything. It must degrade cleanly, and at the same point as naive.
#[test]
fn cell_budget_trips_on_the_delta_skip_charge_path() {
    let program = parse("while W do T <- PRODUCT(A, B) end").unwrap();
    let db = Database::from_tables([
        Table::relational("W", &["K"], &[&["go"]]),
        Table::relational("A", &["A1"], &[&["a"], &["b"], &["c"], &["d"]]),
        Table::relational("B", &["B1"], &[&["x"], &["y"], &["z"], &["w"]]),
    ]);
    // PRODUCT(A, B): 16 rows × 2 cols = 17·3 = 51 cells per iteration,
    // executed once then skip-charged; 180 cells admits 3 charges and
    // trips on the 4th — during the third consecutive skip.
    let mut msgs = Vec::new();
    for strategy in [WhileStrategy::Delta, WhileStrategy::Naive] {
        let mut lim = limits(strategy, usize::MAX);
        lim.max_while_iters = usize::MAX;
        let budget = Budget::from_limits(&lim).with_cell_budget(180);
        let err = run_governed_traced(&program, &db, &budget).unwrap_err();
        let msg = err.to_string();
        let (resource, spent, _, partial) = unwrap_trip(err);
        assert_eq!(resource, governor::RESOURCE_RUN_CELLS);
        assert_eq!(
            spent, 204,
            "{strategy:?}: trip on the fourth 51-cell charge"
        );
        if strategy == WhileStrategy::Delta {
            assert!(
                partial.stats.while_delta_skipped >= 2,
                "the trip interrupted a skip, not an execution"
            );
        }
        assert_partial_trace(&partial.trace, &format!("{strategy:?} skip charge"));
        msgs.push(msg);
    }
    assert_eq!(msgs[0], msgs[1], "skip charges keep the naive trip point");
}

// ---------------------------------------------------------------------
// Two sessions, one CancelToken: the multi-tenant server cancels all of
// a client's concurrent runs through a single shared token. Each run
// owns its metrics registry, so each partial trace must contain exactly
// its own spans, drained exactly once (`Metrics::abort_open`).
// ---------------------------------------------------------------------

#[test]
fn two_sessions_sharing_a_token_drain_only_their_own_spans() {
    let token = CancelToken::new();
    // Distinguishable workloads: session A spins on COPY, session B on
    // TRANSPOSE, so a span drained into the wrong trace is visible.
    let run_session = |program: tables_paradigm::prelude::Program, token: CancelToken| {
        std::thread::spawn(move || {
            let mut lim = limits(WhileStrategy::Delta, usize::MAX);
            lim.max_while_iters = usize::MAX;
            let budget = Budget::from_limits(&lim).with_cancel(token);
            run_governed_traced(&program, &spin_database(), &budget)
        })
    };
    let a = run_session(spin_program(), token.clone());
    let b = run_session(
        parse(
            "while W do
               T <- TRANSPOSE(A)
               A <- TRANSPOSE(B)
               B <- TRANSPOSE(T)
             end",
        )
        .unwrap(),
        token.clone(),
    );
    std::thread::sleep(Duration::from_millis(40));
    token.cancel();

    let allowed: [(&str, &[&str]); 2] = [("A", &["COPY", "while"]), ("B", &["TRANSPOSE", "while"])];
    for (handle, (session, ops)) in [a, b].into_iter().zip(allowed) {
        let err = handle.join().unwrap().unwrap_err();
        let (resource, _, _, partial) = unwrap_trip(err);
        assert_eq!(
            resource,
            governor::RESOURCE_CANCELLED,
            "session {session}: the shared token stopped the run"
        );
        assert!(
            partial.stats.while_iterations > 0,
            "session {session} ran until the cancel"
        );
        assert_partial_trace(&partial.trace, &format!("session {session}"));
        let mut seen = std::collections::HashSet::new();
        for span in partial.trace.spans() {
            assert!(
                ops.contains(&span.op) || span.op == "shard",
                "session {session}: foreign span {:?} in this session's trace",
                span.op
            );
            assert!(
                seen.insert(span.id),
                "session {session}: span {} drained twice",
                span.id
            );
        }
    }
}

// ---------------------------------------------------------------------
// The validator validates (and rejects garbage)
// ---------------------------------------------------------------------

#[test]
fn json_validator_accepts_traces_and_rejects_garbage() {
    assert!(validate_json("{\"dropped\":0,\"spans\":[]}").is_ok());
    assert!(validate_json("{\"a\":[1,-2.5e3,null,true,\"x\\n\\u0041\"]}").is_ok());
    assert!(validate_json("{\"a\":1,}").is_err());
    assert!(validate_json("{\"a\" 1}").is_err());
    assert!(validate_json("[1,2").is_err());
    assert!(validate_json("{} trailing").is_err());
    assert!(validate_json("\"unterminated").is_err());
}
