//! Shared generators for the integration test suite.

// Each integration test binary compiles this module separately and uses
// a different subset of the generators.
#![allow(dead_code)]

use proptest::prelude::*;
use tables_paradigm::prelude::*;

/// A symbol from a small pool: names `A..E`, values `v0..v9`, or ⊥.
pub fn arb_symbol() -> impl Strategy<Value = Symbol> {
    prop_oneof![
        2 => (0u8..5).prop_map(|i| Symbol::name(&format!("{}", (b'A' + i) as char))),
        5 => (0u8..10).prop_map(|i| Symbol::value(&format!("v{i}"))),
        1 => Just(Symbol::Null),
    ]
}

/// A non-⊥ value symbol.
pub fn arb_value() -> impl Strategy<Value = Symbol> {
    (0u8..12).prop_map(|i| Symbol::value(&format!("v{i}")))
}

/// An arbitrary (possibly messy) table: 1–5 data rows and columns,
/// attributes and entries drawn from the symbol pool — duplicated
/// attributes, data in attribute positions, ⊥ anywhere.
pub fn arb_table() -> impl Strategy<Value = Table> {
    (1usize..5, 1usize..5).prop_flat_map(|(h, w)| {
        let cells = proptest::collection::vec(arb_symbol(), (h + 1) * (w + 1));
        ((0u8..3), cells).prop_map(move |(name_i, cells)| {
            let mut t = Table::new(Symbol::name(&format!("T{name_i}")), h, w);
            let mut it = cells.into_iter();
            for i in 0..=h {
                for j in 0..=w {
                    if i == 0 && j == 0 {
                        let _ = it.next();
                        continue;
                    }
                    t.set(i, j, it.next().expect("sized"));
                }
            }
            t
        })
    })
}

/// A database of 1–3 arbitrary tables.
pub fn arb_database() -> impl Strategy<Value = Database> {
    proptest::collection::vec(arb_table(), 1..4).prop_map(Database::from_tables)
}

/// A relational fact table `Facts(K, C, M)`: key, category, numeric
/// measure — the shape pivot/summarize operate on.
pub fn arb_fact_table() -> impl Strategy<Value = Table> {
    proptest::collection::vec((0u8..6, 0u8..4, 0u16..100), 1..20).prop_map(|rows| {
        let mut seen = std::collections::HashSet::new();
        let tuples: Vec<Vec<Symbol>> = rows
            .into_iter()
            .filter(|(k, c, _)| seen.insert((*k, *c))) // one fact per (key, cat)
            .map(|(k, c, m)| {
                vec![
                    Symbol::value(&format!("k{k}")),
                    Symbol::value(&format!("c{c}")),
                    Symbol::value(&format!("{m}")),
                ]
            })
            .collect();
        Table::relational_syms(
            Symbol::name("Facts"),
            &[Symbol::name("K"), Symbol::name("C"), Symbol::name("M")],
            &tuples,
        )
    })
}

/// A random relational database over fixed schemas R(A,B), S(A,B) with
/// small value pools — input for FO-program equivalence tests.
pub fn arb_rel_database() -> impl Strategy<Value = RelDatabase> {
    let tuples = || proptest::collection::vec((0u8..6, 0u8..6), 0..12);
    (tuples(), tuples()).prop_map(|(r, s)| {
        let mk = |name: &str, rows: Vec<(u8, u8)>| {
            let mut rel = Relation::new(name, &["A", "B"], &[]);
            for (a, b) in rows {
                rel.insert(vec![
                    Symbol::value(&format!("v{a}")),
                    Symbol::value(&format!("v{b}")),
                ])
                .expect("arity");
            }
            rel
        };
        RelDatabase::from_relations([mk("R", r), mk("S", s)])
    })
}
