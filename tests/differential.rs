//! Differential test oracle for the TA interpreter's evaluation
//! strategies (DESIGN.md, "Delta-driven `while` evaluation").
//!
//! Random ground `while` programs are run under every combination of
//! `WhileStrategy::{Naive, Delta}` and `parallel_threshold ∈ {1, ∞}`
//! (always-sharded vs never-sharded), plus both strategies with
//! `trace = Spans` so the span-recording path stays exercised (its
//! per-op totals must reconcile with `EvalStats`, and logical production
//! accounting must agree between strategies). All configurations must
//! agree:
//! either every run fails with the same error, or every run produces the
//! same database *up to fresh-tag isomorphism* — programs containing
//! `TUPLENEW` mint different tag symbols on every run, so outputs are
//! compared after renumbering machine-generated symbols into a canonical
//! form (the database-level analogue of
//! `tabular_relational::canonicalize_fresh`).
//!
//! Programs deliberately include name groups (`SPLIT`), non-monotone
//! operations (`DIFFERENCE`, `TRANSPOSE`), loop-invariant statements
//! (skipping candidates), accumulator growth (`CLASSICALUNION` — the
//! append-incremental path), nested loops (delta → naive fallback), and
//! diverging loops (identical `LimitExceeded` errors).

mod common;

use proptest::prelude::*;
use std::cmp::Ordering;
use std::collections::HashMap;
use tables_paradigm::algebra::Statement;
use tables_paradigm::core::interner;
use tables_paradigm::prelude::*;

// ----------------------------------------------------------------------
// Equality up to fresh-tag isomorphism
// ----------------------------------------------------------------------

fn is_fresh(s: Symbol) -> bool {
    s.text().is_some_and(interner::is_reserved)
}

/// Compare two storage rows with fresh symbols masked out (fresh sorts
/// before everything, so rows differing only in tags tie).
fn cmp_masked(a: &[Symbol], b: &[Symbol]) -> Ordering {
    for (&x, &y) in a.iter().zip(b) {
        let c = match (is_fresh(x), is_fresh(y)) {
            (true, true) => Ordering::Equal,
            (true, false) => Ordering::Less,
            (false, true) => Ordering::Greater,
            (false, false) => x.canonical_cmp(y),
        };
        if c != Ordering::Equal {
            return c;
        }
    }
    a.len().cmp(&b.len())
}

/// Renumber machine-generated fresh symbols (tags from `TUPLENEW` /
/// `SETNEW`) into position-canonical placeholders, then canonicalize.
/// Rows and tables are ordered by their fresh-masked content first, so
/// the numbering does not depend on which run minted which tag. Like
/// `tabular_relational::canonicalize_fresh`, this is a true canonical
/// form whenever rows are distinguishable by their non-fresh parts, which
/// holds for tagging-style programs.
fn canonicalize_fresh(db: &Database) -> Database {
    let mut tables: Vec<Table> = db
        .tables()
        .iter()
        .map(|t| {
            let mut idx: Vec<usize> = (1..=t.height()).collect();
            idx.sort_by(|&i, &k| cmp_masked(t.storage_row(i), t.storage_row(k)));
            t.select_rows(&idx)
        })
        .collect();
    tables.sort_by(|a, b| {
        a.name()
            .canonical_cmp(b.name())
            .then_with(|| a.height().cmp(&b.height()))
            .then_with(|| a.width().cmp(&b.width()))
            .then_with(|| {
                (0..=a.height())
                    .map(|i| cmp_masked(a.storage_row(i), b.storage_row(i)))
                    .find(|c| *c != Ordering::Equal)
                    .unwrap_or(Ordering::Equal)
            })
    });
    let mut mapping: HashMap<Symbol, Symbol> = HashMap::new();
    let mut renumber = |s: Symbol| -> Symbol {
        if !is_fresh(s) {
            return s;
        }
        let n = mapping.len();
        *mapping.entry(s).or_insert_with(|| {
            let text = format!("fresh#{n}");
            if s.is_name() {
                Symbol::name(&text)
            } else {
                Symbol::value(&text)
            }
        })
    };
    let renumbered: Vec<Table> = tables
        .iter()
        .map(|t| t.map_symbols(&mut renumber))
        .collect();
    Database::from_tables(renumbered).canonicalize()
}

// ----------------------------------------------------------------------
// Program generation
// ----------------------------------------------------------------------

const TARGETS: [&str; 5] = ["R", "S", "T", "U", "V"];
const SOURCES: [&str; 6] = ["R", "S", "T", "U", "V", "W"];
const ATTRS: [&str; 4] = ["A", "B", "C", "D"];

/// One random ground assignment, as concrete syntax. Covers the
/// traditional, restructuring, transposition, redundancy, and tagging
/// layers; every parameter is a literal name or value, so loop bodies
/// stay eligible for delta evaluation (except when `TUPLENEW` lands in
/// them, which is the fallback case the oracle also wants to hit).
fn arb_stmt() -> impl Strategy<Value = String> {
    (
        0usize..17,
        0usize..5,
        0usize..6,
        0usize..6,
        0usize..4,
        0usize..4,
    )
        .prop_map(|(op, t, x, y, a, b)| {
            let (t, x, y) = (TARGETS[t], SOURCES[x], SOURCES[y]);
            let (a, b) = (ATTRS[a], ATTRS[b]);
            match op {
                0 => format!("{t} <- UNION({x}, {y})"),
                1 => format!("{t} <- DIFFERENCE({x}, {y})"),
                2 => format!("{t} <- INTERSECT({x}, {y})"),
                3 => format!("{t} <- PRODUCT({x}, {y})"),
                4 => format!("{t} <- COPY({x})"),
                5 => format!("{t} <- CLASSICALUNION({x}, {y})"),
                6 => format!("{t} <- SELECT[{a} = {b}]({x})"),
                7 => format!("{t} <- SELECTCONST[{a} = v:v{y}]({x})"),
                8 => format!("{t} <- PROJECT[{{{a}, {b}}}]({x})"),
                9 => format!("{t} <- RENAME[{a} -> {b}]({x})"),
                10 => format!("{t} <- TRANSPOSE({x})"),
                11 => format!("{t} <- CLEANUP[by {{{a}}} on {{{b}}}]({x})"),
                12 => format!("{t} <- PURGE[on {{{a}}} by {{{b}}}]({x})"),
                13 => format!("{t} <- GROUP[by {{{a}}} on {{{b}}}]({x})"),
                14 => format!("{t} <- MERGE[on {{{a}}} by {{{b}}}]({x})"),
                15 => format!("{t} <- SPLIT[on {{{a}}}]({x})"),
                _ => format!("{t} <- TUPLENEW[Tg]({x})"),
            }
        })
}

/// A whole program: prologue, a `while W` loop whose body is a mix of
/// generated statements, optionally a nested inner loop (forcing the
/// naive fallback), and a countdown making the loop run `steps + 1`
/// iterations — or no countdown at all (`steps == 0` with `diverge`),
/// leaving termination to `max_while_iters`.
fn arb_program() -> impl Strategy<Value = String> {
    let stmts = |n| proptest::collection::vec(arb_stmt(), n);
    (
        stmts(0..3usize),
        stmts(1..6usize),
        stmts(0..3usize),
        0usize..4,
        0usize..8,
        stmts(0..2usize),
    )
        .prop_map(|(prologue, body, inner, steps, chaos, epilogue)| {
            let mut lines = prologue;
            lines.push("while W do".into());
            lines.extend(body);
            if !inner.is_empty() {
                lines.push("while X do".into());
                lines.extend(inner);
                lines.push("X <- DIFFERENCE(X, X)".into());
                lines.push("end".into());
            }
            let diverge = chaos == 0;
            if !diverge {
                for i in (1..=steps).rev() {
                    let prev = if i == steps {
                        "Wend".to_string()
                    } else {
                        format!("Wcnt{}", i + 1)
                    };
                    lines.push(format!("Wcnt{i} <- COPY({prev})"));
                }
                let first = if steps == 0 {
                    "Wend".into()
                } else {
                    "Wcnt1".to_string()
                };
                lines.push(format!("W <- COPY({first})"));
                lines.push("Wend <- DIFFERENCE(Wend, Wend)".into());
            }
            lines.push("end".into());
            lines.extend(epilogue);
            lines.join("\n")
        })
}

/// A small input database: two relational tables sharing attribute `B`,
/// two more overlapping tables, an empty one, and the loop counters.
fn arb_input() -> impl Strategy<Value = Database> {
    let rel = |max: usize| proptest::collection::vec((0usize..4, 0usize..4), 0..max);
    (rel(6), rel(6), rel(4), rel(4)).prop_map(|(r, s, t, u)| {
        let table = |name: &str, attrs: [&str; 2], rows: &[(usize, usize)]| {
            let tuples: Vec<Vec<Symbol>> = rows
                .iter()
                .map(|(a, b)| {
                    vec![
                        Symbol::value(&format!("v{a}")),
                        Symbol::value(&format!("v{b}")),
                    ]
                })
                .collect();
            Table::relational_syms(
                Symbol::name(name),
                &[Symbol::name(attrs[0]), Symbol::name(attrs[1])],
                &tuples,
            )
        };
        let counter = |name: &str| Table::relational(name, &["K"], &[&["go"]]);
        Database::from_tables([
            table("R", ["A", "B"], &r),
            table("S", ["B", "C"], &s),
            table("T", ["C", "D"], &t),
            table("U", ["A", "C"], &u),
            Table::relational("V", &["D"], &[]),
            counter("W"),
            counter("X"),
            counter("Wend"),
            counter("Wcnt1"),
            counter("Wcnt2"),
            counter("Wcnt3"),
        ])
    })
}

// ----------------------------------------------------------------------
// The oracle
// ----------------------------------------------------------------------

fn limits(strategy: WhileStrategy, parallel_threshold: usize) -> EvalLimits {
    EvalLimits {
        max_while_iters: 6,
        max_cells: 20_000,
        max_tables: 64,
        while_strategy: strategy,
        parallel_threshold,
        ..EvalLimits::default()
    }
}

fn spans(strategy: WhileStrategy) -> EvalLimits {
    EvalLimits {
        trace: TraceLevel::Spans,
        ..limits(strategy, usize::MAX)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn strategies_and_sharding_agree(src in arb_program(), db in arb_input()) {
        let program = parse(&src).unwrap_or_else(|e| {
            panic!("generated program must parse: {e}\n{src}")
        });
        let configs = [
            limits(WhileStrategy::Naive, usize::MAX),
            limits(WhileStrategy::Naive, 1),
            limits(WhileStrategy::Delta, usize::MAX),
            limits(WhileStrategy::Delta, 1),
            spans(WhileStrategy::Naive),
            spans(WhileStrategy::Delta),
        ];
        let baseline = run_traced(&program, &db, &configs[0]);
        let canon_base = baseline.as_ref().map(|(out, _, _)| canonicalize_fresh(out));
        let base_stats = baseline.as_ref().ok().map(|(_, stats, _)| stats);
        for cfg in &configs[1..] {
            let traced = run_traced(&program, &db, cfg);
            match (&canon_base, &traced) {
                (Ok(expect), Ok((got, stats, trace))) => {
                    let got = canonicalize_fresh(got);
                    prop_assert!(
                        *expect == got,
                        "outputs diverge under {:?}/threshold {}\nprogram:\n{}\nbaseline:\n{}\ngot:\n{}",
                        cfg.while_strategy, cfg.parallel_threshold, src, expect, got
                    );
                    // Unplanned runs must never report planner activity
                    // (the counters are stamped only by the planned
                    // entry points).
                    prop_assert_eq!(stats.plans_rewritten, 0);
                    prop_assert_eq!(stats.plan_rules_applied, 0);
                    // Logical production accounting agrees across
                    // strategies: delta skips charge their memoized
                    // output shape.
                    if let Some(base) = base_stats {
                        prop_assert_eq!(
                            base.tables_produced, stats.tables_produced,
                            "tables_produced diverges under {:?}/threshold {} for program:\n{}",
                            cfg.while_strategy, cfg.parallel_threshold, src
                        );
                        prop_assert_eq!(
                            base.max_table_cells, stats.max_table_cells,
                            "max_table_cells diverges under {:?}/threshold {} for program:\n{}",
                            cfg.while_strategy, cfg.parallel_threshold, src
                        );
                    }
                    // Complete span traces reconcile exactly with stats.
                    if cfg.trace == TraceLevel::Spans && trace.dropped() == 0 {
                        prop_assert_eq!(
                            trace.per_op_micros(), stats.op_micros.clone(),
                            "trace/stats mismatch under {:?} for program:\n{}",
                            cfg.while_strategy, src
                        );
                    }
                }
                (Err(expect), Err(got)) => {
                    prop_assert_eq!(
                        expect.to_string(),
                        got.to_string(),
                        "errors diverge under {:?}/threshold {} for program:\n{}",
                        cfg.while_strategy, cfg.parallel_threshold, src
                    );
                }
                (Ok(_), Err(got)) => {
                    return Err(TestCaseError::fail(format!(
                        "baseline succeeded but {:?}/threshold {} failed with {got}\nprogram:\n{}",
                        cfg.while_strategy, cfg.parallel_threshold, src
                    )));
                }
                (Err(expect), Ok(_)) => {
                    return Err(TestCaseError::fail(format!(
                        "baseline failed with {expect} but {:?}/threshold {} succeeded\nprogram:\n{}",
                        cfg.while_strategy, cfg.parallel_threshold, src
                    )));
                }
            }
        }
    }
}

// ----------------------------------------------------------------------
// The fusion oracle: join fusion on ≡ off
// ----------------------------------------------------------------------

/// A `SELECT[a = b]` over a `PRODUCT` staged through single-use
/// reserved-namespace scratch — the exact shape `fuse_joins` rewrites
/// into `FUSEDJOIN`. `n` keeps scratch names unique across splices.
fn fusable_chain(n: usize, t: &str, x: &str, y: &str, a: &str, b: &str) -> Vec<Statement> {
    use tables_paradigm::algebra::Assignment;
    let scratch = Param::sym(Symbol::name(&format!("\u{1F}fo{n}")));
    vec![
        Statement::Assign(Assignment {
            target: scratch.clone(),
            op: OpKind::Product,
            args: vec![Param::name(x), Param::name(y)],
        }),
        Statement::Assign(Assignment {
            target: Param::name(t),
            op: OpKind::Select {
                a: Param::name(a),
                b: Param::name(b),
            },
            args: vec![scratch],
        }),
    ]
}

/// Drop reserved-namespace scratch tables: the unfused program
/// materializes its staged products there, the fused one never creates
/// them, so only the visible tables are comparable.
fn visible(db: &Database) -> Database {
    Database::from_tables(
        db.tables()
            .iter()
            .filter(|t| !is_fresh(t.name()))
            .cloned()
            .collect::<Vec<_>>(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The fusion oracle: applying the optimizer's join-fusion rewrite
    /// must not change any visible output under any strategy or shard
    /// configuration. Random programs get SELECT-over-scratch-PRODUCT
    /// chains spliced into the prologue (always executed) and the loop
    /// body (delta-incremental path); whether each chain's attributes
    /// make the hash kernel applicable or force the definitional
    /// fallback varies with the drawn operands — both must agree with
    /// the unfused program. The comparison is asymmetric on resource
    /// trips by design: fusion never materializes the staged product,
    /// so a fused run may succeed where the unfused baseline exhausts
    /// `max_cells`/`max_tables` — that asymmetry is the optimization.
    #[test]
    fn fusion_on_and_off_agree(
        src in arb_program(),
        db in arb_input(),
        (t1, x1, y1) in (0usize..5, 0usize..6, 0usize..6),
        (a1, b1) in (0usize..4, 0usize..4),
        (t2, x2, y2) in (0usize..5, 0usize..6, 0usize..6),
        (a2, b2) in (0usize..4, 0usize..4),
    ) {
        use tables_paradigm::algebra::optimize::fuse_joins;

        let mut program = parse(&src).unwrap_or_else(|e| {
            panic!("generated program must parse: {e}\n{src}")
        });
        let head = fusable_chain(0, TARGETS[t1], SOURCES[x1], SOURCES[y1], ATTRS[a1], ATTRS[b1]);
        program.statements.splice(0..0, head);
        if let Some(Statement::While { body, .. }) = program
            .statements
            .iter_mut()
            .find(|s| matches!(s, Statement::While { .. }))
        {
            let inner =
                fusable_chain(1, TARGETS[t2], SOURCES[x2], SOURCES[y2], ATTRS[a2], ATTRS[b2]);
            body.splice(0..0, inner);
        }
        let fused = fuse_joins(&program);
        fn count_fused(stmts: &[Statement]) -> usize {
            stmts
                .iter()
                .map(|s| match s {
                    Statement::Assign(a) => {
                        usize::from(matches!(a.op, OpKind::FusedJoin { .. }))
                    }
                    Statement::While { body, .. } => count_fused(body),
                })
                .sum()
        }
        prop_assert!(count_fused(&fused.statements) >= 1, "spliced chains must fuse");

        let configs = [
            limits(WhileStrategy::Naive, usize::MAX),
            limits(WhileStrategy::Naive, 1),
            limits(WhileStrategy::Delta, usize::MAX),
            limits(WhileStrategy::Delta, 1),
        ];
        let baseline = run_traced(&program, &db, &configs[0]);
        let Ok((base_out, _, _)) = &baseline else {
            // Unfused baseline tripped a resource limit; fused runs may
            // legitimately proceed further, so there is nothing to pin.
            return Ok(());
        };
        let expect = canonicalize_fresh(&visible(base_out));
        for cfg in &configs {
            let (got, stats, _) = run_traced(&fused, &db, cfg).unwrap_or_else(|e| {
                panic!(
                    "fused run failed where unfused baseline succeeded \
                     under {:?}/threshold {}: {e}\nprogram:\n{src}",
                    cfg.while_strategy, cfg.parallel_threshold
                )
            });
            prop_assert!(
                expect == canonicalize_fresh(&visible(&got)),
                "fused output diverges under {:?}/threshold {}\nprogram:\n{}",
                cfg.while_strategy, cfg.parallel_threshold, src
            );
            // The prologue chain always executes, so every fused run
            // decides the kernel-vs-fallback question at least once.
            prop_assert!(
                stats.join_fused + stats.join_unfused >= 1,
                "fused run recorded no fusion decision under {:?}/threshold {}",
                cfg.while_strategy, cfg.parallel_threshold
            );
        }
        // And the unfused program itself still agrees across strategies
        // on the spliced shape (the pre-existing oracle covers generated
        // programs; this covers the scratch-staged chains).
        for cfg in &configs[1..] {
            if let Ok((got, _, _)) = run_traced(&program, &db, cfg) {
                prop_assert!(
                    expect == canonicalize_fresh(&visible(&got)),
                    "unfused output diverges under {:?}/threshold {}\nprogram:\n{}",
                    cfg.while_strategy, cfg.parallel_threshold, src
                );
            }
        }
    }
}

// ----------------------------------------------------------------------
// The partitioning oracle: partition-parallel joins on ≡ off
// ----------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The partitioning oracle: the partition-parallel join kernel must
    /// be *byte-identical* to the serial kernel — not merely equivalent —
    /// under every strategy and shard configuration. The same fused
    /// program (scratch-staged join chains spliced into the prologue and
    /// the loop body, then `fuse_joins`) runs under Naive/Delta ×
    /// serial/sharded × `partition_threshold ∈ {∞, 1}`; because only the
    /// limits differ, every run must produce the same database (up to
    /// fresh-tag renumbering for `TUPLENEW` programs) or fail with the
    /// same error — partitioning materializes exactly the tables the
    /// serial kernel does, so even `LimitExceeded` trips must agree.
    #[test]
    fn partitioning_on_and_off_agree(
        src in arb_program(),
        db in arb_input(),
        (t1, x1, y1) in (0usize..5, 0usize..6, 0usize..6),
        (a1, b1) in (0usize..4, 0usize..4),
        (t2, x2, y2) in (0usize..5, 0usize..6, 0usize..6),
        (a2, b2) in (0usize..4, 0usize..4),
    ) {
        use tables_paradigm::algebra::optimize::fuse_joins;

        let mut program = parse(&src).unwrap_or_else(|e| {
            panic!("generated program must parse: {e}\n{src}")
        });
        let head = fusable_chain(2, TARGETS[t1], SOURCES[x1], SOURCES[y1], ATTRS[a1], ATTRS[b1]);
        program.statements.splice(0..0, head);
        if let Some(Statement::While { body, .. }) = program
            .statements
            .iter_mut()
            .find(|s| matches!(s, Statement::While { .. }))
        {
            let inner =
                fusable_chain(3, TARGETS[t2], SOURCES[x2], SOURCES[y2], ATTRS[a2], ATTRS[b2]);
            body.splice(0..0, inner);
        }
        let fused = fuse_joins(&program);

        let mut configs = Vec::new();
        for strategy in [WhileStrategy::Naive, WhileStrategy::Delta] {
            for parallel in [usize::MAX, 1] {
                for partition in [usize::MAX, 1] {
                    configs.push(EvalLimits {
                        partition_threshold: partition,
                        threads: 2,
                        ..limits(strategy, parallel)
                    });
                }
            }
        }
        // Baseline: Naive, serial, partitioning off.
        let baseline = run_traced(&fused, &db, &configs[0]);
        let expect = baseline.as_ref().ok().map(|(out, _, _)| canonicalize_fresh(&visible(out)));
        for cfg in &configs[1..] {
            let label = format!(
                "{:?}/threshold {}/partition {}",
                cfg.while_strategy, cfg.parallel_threshold, cfg.partition_threshold
            );
            match (&baseline, run_traced(&fused, &db, cfg)) {
                (Ok(_), Ok((got, stats, _))) => {
                    prop_assert!(
                        *expect.as_ref().unwrap() == canonicalize_fresh(&visible(&got)),
                        "partitioned output diverges under {}\nprogram:\n{}",
                        label, src
                    );
                    if cfg.partition_threshold == usize::MAX {
                        prop_assert_eq!(
                            stats.partitioned_joins, 0,
                            "partitioning engaged though disabled under {}", label
                        );
                    }
                }
                (Err(expect), Err(got)) => {
                    prop_assert_eq!(
                        expect.to_string(),
                        got.to_string(),
                        "errors diverge under {} for program:\n{}",
                        label, src
                    );
                }
                (Ok(_), Err(got)) => {
                    return Err(TestCaseError::fail(format!(
                        "baseline succeeded but {label} failed with {got}\nprogram:\n{src}"
                    )));
                }
                (Err(expect), Ok(_)) => {
                    return Err(TestCaseError::fail(format!(
                        "baseline failed with {expect} but {label} succeeded\nprogram:\n{src}"
                    )));
                }
            }
        }
    }
}

// ----------------------------------------------------------------------
// The restructuring oracle: restructure fusion on ≡ off
// ----------------------------------------------------------------------

/// A `GROUP → CLEANUP (→ PURGE)` chain staged through single-use
/// reserved-namespace scratches — the exact shape `fuse_restructure`
/// rewrites into `FUSEDRESTRUCTURE`. `n` keeps scratch names unique
/// across splices.
#[allow(clippy::too_many_arguments)]
fn restructure_chain(
    n: usize,
    t: &str,
    x: &str,
    by: &str,
    on: &str,
    key: &str,
    cleanup_on_null: bool,
    with_purge: bool,
) -> Vec<Statement> {
    use tables_paradigm::algebra::Assignment;
    let grouped = Param::sym(Symbol::name(&format!("\u{1F}fr{n}a")));
    let cleanup_on = if cleanup_on_null {
        Param::null()
    } else {
        Param::name(key)
    };
    let mut stmts = vec![Statement::Assign(Assignment {
        target: grouped.clone(),
        op: OpKind::Group {
            by: Param::name(by),
            on: Param::name(on),
        },
        args: vec![Param::name(x)],
    })];
    let cleanup = |target: Param, arg: Param| {
        Statement::Assign(Assignment {
            target,
            op: OpKind::CleanUp {
                by: Param::name(key),
                on: cleanup_on.clone(),
            },
            args: vec![arg],
        })
    };
    if with_purge {
        let cleaned = Param::sym(Symbol::name(&format!("\u{1F}fr{n}b")));
        stmts.push(cleanup(cleaned.clone(), grouped));
        stmts.push(Statement::Assign(Assignment {
            target: Param::name(t),
            op: OpKind::Purge {
                on: Param::name(on),
                by: Param::name(by),
            },
            args: vec![cleaned],
        }));
    } else {
        stmts.push(cleanup(Param::name(t), grouped));
    }
    stmts
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The restructuring oracle: applying the optimizer's
    /// restructure-fusion rewrite must not change any visible output
    /// under any strategy or shard configuration. Random programs get
    /// GROUP → CLEANUP (→ PURGE) chains spliced into the prologue
    /// (always executed) and the loop body (full re-evaluation inside
    /// the delta engine); whether each chain's shape lets the
    /// single-pass kernel apply or forces the staged fallback varies
    /// with the drawn attributes — both must agree with the unfused
    /// program. Like the join oracle, the comparison is asymmetric on
    /// resource trips: fusion never materializes the quadratic grouped
    /// intermediate, so a fused run may succeed where the unfused
    /// baseline exhausts `max_cells`/`max_tables`.
    #[test]
    fn restructure_fusion_on_and_off_agree(
        src in arb_program(),
        db in arb_input(),
        (t1, x1, by1, on1, k1) in (0usize..5, 0usize..6, 0usize..4, 0usize..4, 0usize..4),
        (t2, x2, by2, on2, k2) in (0usize..5, 0usize..6, 0usize..4, 0usize..4, 0usize..4),
        (shape1, shape2) in (0usize..4, 0usize..4),
    ) {
        use tables_paradigm::algebra::optimize::fuse_restructure;

        let (null1, purge1) = (shape1 & 1 == 0, shape1 & 2 == 0);
        let (null2, purge2) = (shape2 & 1 == 0, shape2 & 2 == 0);

        let mut program = parse(&src).unwrap_or_else(|e| {
            panic!("generated program must parse: {e}\n{src}")
        });
        let head = restructure_chain(
            0, TARGETS[t1], SOURCES[x1], ATTRS[by1], ATTRS[on1], ATTRS[k1], null1, purge1,
        );
        program.statements.splice(0..0, head);
        if let Some(Statement::While { body, .. }) = program
            .statements
            .iter_mut()
            .find(|s| matches!(s, Statement::While { .. }))
        {
            let inner = restructure_chain(
                1, TARGETS[t2], SOURCES[x2], ATTRS[by2], ATTRS[on2], ATTRS[k2], null2, purge2,
            );
            body.splice(0..0, inner);
        }
        let fused = fuse_restructure(&program);
        fn count_fused(stmts: &[Statement]) -> usize {
            stmts
                .iter()
                .map(|s| match s {
                    Statement::Assign(a) => {
                        usize::from(matches!(a.op, OpKind::FusedRestructure { .. }))
                    }
                    Statement::While { body, .. } => count_fused(body),
                })
                .sum()
        }
        prop_assert!(count_fused(&fused.statements) >= 1, "spliced chains must fuse");

        let configs = [
            limits(WhileStrategy::Naive, usize::MAX),
            limits(WhileStrategy::Naive, 1),
            limits(WhileStrategy::Delta, usize::MAX),
            limits(WhileStrategy::Delta, 1),
        ];
        let baseline = run_traced(&program, &db, &configs[0]);
        let Ok((base_out, _, _)) = &baseline else {
            // Unfused baseline tripped a resource limit; fused runs may
            // legitimately proceed further, so there is nothing to pin.
            return Ok(());
        };
        let expect = canonicalize_fresh(&visible(base_out));
        for cfg in &configs {
            let (got, stats, _) = run_traced(&fused, &db, cfg).unwrap_or_else(|e| {
                panic!(
                    "fused run failed where unfused baseline succeeded \
                     under {:?}/threshold {}: {e}\nprogram:\n{src}",
                    cfg.while_strategy, cfg.parallel_threshold
                )
            });
            prop_assert!(
                expect == canonicalize_fresh(&visible(&got)),
                "fused output diverges under {:?}/threshold {}\nprogram:\n{}",
                cfg.while_strategy, cfg.parallel_threshold, src
            );
            // The prologue chain always executes, so every fused run
            // decides the kernel-vs-fallback question at least once.
            prop_assert!(
                stats.restructure_fused + stats.restructure_unfused >= 1,
                "fused run recorded no restructure decision under {:?}/threshold {}",
                cfg.while_strategy, cfg.parallel_threshold
            );
        }
        // And the unfused program itself still agrees across strategies
        // on the spliced shape.
        for cfg in &configs[1..] {
            if let Ok((got, _, _)) = run_traced(&program, &db, cfg) {
                prop_assert!(
                    expect == canonicalize_fresh(&visible(&got)),
                    "unfused output diverges under {:?}/threshold {}\nprogram:\n{}",
                    cfg.while_strategy, cfg.parallel_threshold, src
                );
            }
        }
    }
}

// ----------------------------------------------------------------------
// The planner oracle: full cost-based planning on ≡ off
// ----------------------------------------------------------------------

/// A left-deep 3-way product chain staged through single-use
/// reserved-namespace scratches, closed by a ground `SELECT` — the shape
/// the planner's join-reordering rule rewrites when statistics prove a
/// cheaper order. `n` keeps scratch names unique across splices.
fn reorder_chain(
    n: usize,
    t: &str,
    l1: &str,
    l2: &str,
    l3: &str,
    a: &str,
    b: &str,
) -> Vec<Statement> {
    use tables_paradigm::algebra::Assignment;
    let s1 = Param::sym(Symbol::name(&format!("\u{1F}ro{n}a")));
    let s2 = Param::sym(Symbol::name(&format!("\u{1F}ro{n}b")));
    vec![
        Statement::Assign(Assignment {
            target: s1.clone(),
            op: OpKind::Product,
            args: vec![Param::name(l1), Param::name(l2)],
        }),
        Statement::Assign(Assignment {
            target: s2.clone(),
            op: OpKind::Product,
            args: vec![s1, Param::name(l3)],
        }),
        Statement::Assign(Assignment {
            target: Param::name(t),
            op: OpKind::Select {
                a: Param::name(a),
                b: Param::name(b),
            },
            args: vec![s2],
        }),
    ]
}

/// A resource trip: outcomes the planner is allowed to *shift* (fusing
/// and reordering change which intermediates materialize, so one side
/// may exhaust `max_cells`/`max_tables` where the other proceeds).
fn is_resource_trip(e: &tables_paradigm::algebra::AlgebraError) -> bool {
    use tables_paradigm::algebra::AlgebraError;
    matches!(
        e,
        AlgebraError::LimitExceeded { .. } | AlgebraError::BudgetExceeded { .. }
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The planner oracle: running a program through the full cost-based
    /// planner (`run_planned_traced` = statistics catalog + every rule in
    /// `ALL_RULES`) must agree with the unplanned run on every visible
    /// table, under Naive/Delta × serial/sharded. Random programs get a
    /// fusable SELECT-over-PRODUCT chain *and* a 3-way reorderable
    /// product chain spliced into the prologue (always executed, exact
    /// store statistics available) and the loop body (statistics
    /// invalidated by the loop — the planner must stay conservative
    /// there). Errors must match exactly, except that a resource trip on
    /// one side tolerates the other side proceeding: planning changes
    /// which intermediates materialize, in either direction (fusion
    /// skips the staged product; reordering mints different
    /// intermediates). Planning is deterministic, so the decision
    /// counters must agree across every configuration.
    #[test]
    fn planner_on_and_off_agree(
        src in arb_program(),
        db in arb_input(),
        ((t1, x1, y1), (a1, b1)) in (
            (0usize..5, 0usize..6, 0usize..6),
            (0usize..4, 0usize..4),
        ),
        (t2, l1, l2, l3) in (0usize..5, 0usize..6, 0usize..6, 0usize..6),
        (a2, b2) in (0usize..4, 0usize..4),
        (t3, x3, y3, a3, b3) in (0usize..5, 0usize..6, 0usize..6, 0usize..4, 0usize..4),
    ) {
        use tables_paradigm::algebra::run_planned_traced;

        let mut program = parse(&src).unwrap_or_else(|e| {
            panic!("generated program must parse: {e}\n{src}")
        });
        let mut head = fusable_chain(4, TARGETS[t1], SOURCES[x1], SOURCES[y1], ATTRS[a1], ATTRS[b1]);
        head.extend(reorder_chain(
            0, TARGETS[t2], SOURCES[l1], SOURCES[l2], SOURCES[l3], ATTRS[a2], ATTRS[b2],
        ));
        program.statements.splice(0..0, head);
        if let Some(Statement::While { body, .. }) = program
            .statements
            .iter_mut()
            .find(|s| matches!(s, Statement::While { .. }))
        {
            let inner =
                fusable_chain(5, TARGETS[t3], SOURCES[x3], SOURCES[y3], ATTRS[a3], ATTRS[b3]);
            body.splice(0..0, inner);
        }

        let configs = [
            limits(WhileStrategy::Naive, usize::MAX),
            limits(WhileStrategy::Naive, 1),
            limits(WhileStrategy::Delta, usize::MAX),
            limits(WhileStrategy::Delta, 1),
        ];
        let baseline = run_traced(&program, &db, &configs[0]);
        let expect = baseline.as_ref().ok().map(|(out, _, _)| canonicalize_fresh(&visible(out)));
        let mut counters: Option<(usize, usize)> = None;
        for cfg in &configs {
            let label = format!("{:?}/threshold {}", cfg.while_strategy, cfg.parallel_threshold);
            let planned = run_planned_traced(&program, &db, cfg);
            match (&baseline, &planned) {
                (Ok(_), Ok((got, stats, _))) => {
                    prop_assert!(
                        *expect.as_ref().unwrap() == canonicalize_fresh(&visible(got)),
                        "planned output diverges under {}\nprogram:\n{}",
                        label, src
                    );
                    // The prologue chains always see exact store
                    // statistics, so the planner decides something on
                    // every run — and deterministically.
                    prop_assert!(
                        stats.plan_rules_applied >= 1,
                        "planner recorded no decision under {} for program:\n{}",
                        label, src
                    );
                    match counters {
                        None => counters = Some((stats.plans_rewritten, stats.plan_rules_applied)),
                        Some(c) => prop_assert_eq!(
                            c,
                            (stats.plans_rewritten, stats.plan_rules_applied),
                            "plan counters diverge under {} for program:\n{}",
                            label, src
                        ),
                    }
                }
                (Err(e1), Err(e2)) => {
                    prop_assert!(
                        e1.to_string() == e2.to_string()
                            || (is_resource_trip(e1) && is_resource_trip(e2)),
                        "errors diverge under {}: baseline {e1}, planned {e2}\nprogram:\n{}",
                        label, src
                    );
                }
                (Ok(_), Err(e)) | (Err(e), Ok(_)) => {
                    prop_assert!(
                        is_resource_trip(e),
                        "non-resource outcome diverges under {}: {e}\nprogram:\n{}",
                        label, src
                    );
                }
            }
        }
    }
}

// ----------------------------------------------------------------------
// Per-rule soundness: every rule alone preserves semantics
// ----------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Each planner rule, applied *alone* with the statistics catalog,
    /// preserves the visible semantics of the program — the rule-level
    /// refinement of `planner_on_and_off_agree` (which only checks the
    /// composed pipeline, where a later rule could mask an earlier
    /// rule's bug).
    #[test]
    fn each_planner_rule_preserves_semantics(
        src in arb_program(),
        db in arb_input(),
        (t1, x1, y1) in (0usize..5, 0usize..6, 0usize..6),
        (a1, b1) in (0usize..4, 0usize..4),
        (t2, l1, l2, l3) in (0usize..5, 0usize..6, 0usize..6, 0usize..6),
        (a2, b2) in (0usize..4, 0usize..4),
    ) {
        use tables_paradigm::algebra::{plan_with_rules, ALL_RULES};

        let mut program = parse(&src).unwrap_or_else(|e| {
            panic!("generated program must parse: {e}\n{src}")
        });
        let mut head = fusable_chain(6, TARGETS[t1], SOURCES[x1], SOURCES[y1], ATTRS[a1], ATTRS[b1]);
        head.extend(reorder_chain(
            1, TARGETS[t2], SOURCES[l1], SOURCES[l2], SOURCES[l3], ATTRS[a2], ATTRS[b2],
        ));
        program.statements.splice(0..0, head);

        let cfg = limits(WhileStrategy::Naive, usize::MAX);
        let baseline = run_traced(&program, &db, &cfg);
        let Ok((base_out, _, _)) = &baseline else {
            return Ok(());
        };
        let expect = canonicalize_fresh(&visible(base_out));
        for rule in ALL_RULES {
            let (rewritten, _) = plan_with_rules(&program, Some(&db), &[rule]);
            match run_traced(&rewritten, &db, &cfg) {
                Ok((got, _, _)) => prop_assert!(
                    expect == canonicalize_fresh(&visible(&got)),
                    "rule {:?} changed visible output\nprogram:\n{}",
                    rule, src
                ),
                // A single rule may shift which intermediates
                // materialize (e.g. pushdown mints per-branch scratch
                // selects), so a resource trip is tolerated; any other
                // error is a soundness bug.
                Err(e) => prop_assert!(
                    is_resource_trip(&e),
                    "rule {:?} failed where the original succeeded: {e}\nprogram:\n{}",
                    rule, src
                ),
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The budget oracle: same program, same cell budget → same trip
    /// point across every strategy and shard configuration. Run-cell
    /// charges land once per statement on the evaluating thread, so the
    /// cumulative spend at the trip — reported in the error string — is
    /// deterministic even when the work itself is sharded; the partial
    /// stats carried by the trip agree for the same reason. (Deadline
    /// and cancellation trips are inherently timing-dependent and are
    /// excluded: this oracle governs the cell budget only.)
    #[test]
    fn budget_trip_points_agree_across_strategies(src in arb_program(), db in arb_input()) {
        use tables_paradigm::algebra::AlgebraError;

        let program = parse(&src).unwrap_or_else(|e| {
            panic!("generated program must parse: {e}\n{src}")
        });
        let configs = [
            limits(WhileStrategy::Naive, usize::MAX),
            limits(WhileStrategy::Naive, 1),
            limits(WhileStrategy::Delta, usize::MAX),
            limits(WhileStrategy::Delta, 1),
        ];
        let budgets: Vec<Budget> = configs
            .iter()
            .map(|l| Budget::from_limits(l).with_cell_budget(800))
            .collect();
        let baseline = run_governed_traced(&program, &db, &budgets[0]);
        let canon_base = baseline.as_ref().map(|(out, _, _)| canonicalize_fresh(out));
        for (cfg, budget) in configs[1..].iter().zip(&budgets[1..]) {
            let got = run_governed_traced(&program, &db, budget);
            match (&baseline, &got) {
                (Ok(_), Ok((out, _, _))) => {
                    let expect = canon_base.as_ref().ok().unwrap();
                    let out = canonicalize_fresh(out);
                    prop_assert!(
                        *expect == out,
                        "budgeted outputs diverge under {:?}/threshold {}\nprogram:\n{}",
                        cfg.while_strategy, cfg.parallel_threshold, src
                    );
                }
                (Err(e1), Err(e2)) => {
                    prop_assert_eq!(
                        e1.to_string(),
                        e2.to_string(),
                        "trip points diverge under {:?}/threshold {} for program:\n{}",
                        cfg.while_strategy, cfg.parallel_threshold, src
                    );
                    if let (
                        AlgebraError::BudgetExceeded { partial: p1, .. },
                        AlgebraError::BudgetExceeded { partial: p2, .. },
                    ) = (e1, e2)
                    {
                        prop_assert_eq!(
                            (p1.stats.while_iterations, p1.stats.tables_produced, p1.stats.max_table_cells),
                            (p2.stats.while_iterations, p2.stats.tables_produced, p2.stats.max_table_cells),
                            "partial stats diverge at the trip under {:?}/threshold {} for program:\n{}",
                            cfg.while_strategy, cfg.parallel_threshold, src
                        );
                    }
                }
                (a, b) => {
                    return Err(TestCaseError::fail(format!(
                        "budgeted outcomes diverge under {:?}/threshold {}: baseline ok={}, got ok={}\nprogram:\n{}",
                        cfg.while_strategy, cfg.parallel_threshold, a.is_ok(), b.is_ok(), src
                    )));
                }
            }
        }
    }
}

/// The oracle's comparison itself must identify two independent runs of a
/// tagging program (fresh tags differ, structure does not).
#[test]
fn fresh_canonicalization_identifies_independent_taggings() {
    let db = Database::from_tables([Table::relational(
        "R",
        &["A", "B"],
        &[&["1", "x"], &["2", "y"]],
    )]);
    let p = parse("T <- TUPLENEW[Tag](R)").unwrap();
    let l = limits(WhileStrategy::Naive, usize::MAX);
    let run1 = run(&p, &db, &l).unwrap();
    let run2 = run(&p, &db, &l).unwrap();
    assert_ne!(run1.canonicalize(), run2.canonicalize(), "tags must differ");
    assert_eq!(canonicalize_fresh(&run1), canonicalize_fresh(&run2));
}

/// And it must still distinguish genuinely different databases.
#[test]
fn fresh_canonicalization_is_not_trivial() {
    let a = Database::from_tables([Table::relational("R", &["A"], &[&["1"]])]);
    let b = Database::from_tables([Table::relational("R", &["A"], &[&["2"]])]);
    assert_ne!(canonicalize_fresh(&a), canonicalize_fresh(&b));
}
