//! Genericity (§4.1, condition (i)): tabular algebra operations commute
//! with every permutation of `S` that is the identity on names and ⊥ —
//! they may distinguish individual names, never individual values.

mod common;

use common::{arb_database, arb_table};
use proptest::prelude::*;
use tables_paradigm::algebra::ops;
use tables_paradigm::prelude::*;

/// A value permutation: injectively re-spell every value, fix names and ⊥.
fn permute(s: Symbol) -> Symbol {
    match s {
        Symbol::Value(_) => Symbol::value(&format!("π{}", s.text().expect("value has text"))),
        other => other,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn unary_operations_are_generic(t in arb_table()) {
        // Operation parameters range over *names* (and ⊥): genericity
        // fixes names, so value-sorted attributes — legal in tables, per
        // SalesInfo3 — are data and would be permuted along, not held
        // fixed in a parameter list.
        let by: SymbolSet = t.scheme().iter().filter(|s| !s.is_value()).collect();
        let on: SymbolSet = t.row_scheme().iter().filter(|s| !s.is_value()).collect();
        let name = Symbol::name("Out");

        type UnaryOp<'a> = (&'a str, Box<dyn Fn(&Table) -> Table>);
        let cases: Vec<UnaryOp> = vec![
            ("transpose", Box::new(move |x: &Table| ops::transpose(x, name))),
            ("project", {
                let by = by.clone();
                Box::new(move |x: &Table| ops::project(x, &by, name))
            }),
            ("cleanup", {
                let (by, on) = (by.clone(), on.clone());
                Box::new(move |x: &Table| ops::cleanup(x, &by, &on, name))
            }),
            ("purge", {
                let (by, on) = (by.clone(), on.clone());
                Box::new(move |x: &Table| ops::purge(x, &by, &on, name))
            }),
            ("group", {
                let by = by.clone();
                Box::new(move |x: &Table| ops::group(x, &by, &SymbolSet::new(), name))
            }),
            ("merge", {
                let (by, on) = (by.clone(), on.clone());
                Box::new(move |x: &Table| ops::merge(x, &by, &on, name))
            }),
        ];
        for (label, op) in cases {
            let op_then_pi = op(&t).map_symbols(permute);
            let pi_then_op = op(&t.map_symbols(permute));
            prop_assert_eq!(
                &op_then_pi, &pi_then_op,
                "{} is not generic:\n{}\nvs\n{}", label, op_then_pi, pi_then_op
            );
        }
    }

    #[test]
    fn binary_operations_are_generic(a in arb_table(), b in arb_table()) {
        let name = Symbol::name("Out");
        type BinaryOp<'a> = (&'a str, fn(&Table, &Table, Symbol) -> Table);
        let cases: Vec<BinaryOp> = vec![
            ("union", ops::union),
            ("difference", ops::difference),
            ("intersect", ops::intersect),
            ("product", ops::product),
            ("classical_union", ops::classical_union),
        ];
        for (label, op) in cases {
            let op_then_pi = op(&a, &b, name).map_symbols(permute);
            let pi_then_op = op(&a.map_symbols(permute), &b.map_symbols(permute), name);
            prop_assert_eq!(&op_then_pi, &pi_then_op, "{} is not generic", label);
        }
    }

    #[test]
    fn split_is_generic(t in arb_table()) {
        let on: SymbolSet = t.scheme().iter().filter(|s| !s.is_value()).collect();
        let name = Symbol::name("Out");
        let op_then_pi: Vec<Table> = ops::split(&t, &on, name)
            .into_iter()
            .map(|x| x.map_symbols(permute))
            .collect();
        let pi_then_op = ops::split(&t.map_symbols(permute), &on, name);
        prop_assert_eq!(op_then_pi, pi_then_op);
    }

    #[test]
    fn whole_programs_are_generic(db in arb_database()) {
        // A representative program using wildcards over all tables.
        let program = tables_paradigm::algebra::parser::parse(
            "*1 <- TRANSPOSE(*1)
             *1 <- CLEANUP[by {*} on {_}](*1)",
        ).expect("parses");
        let limits = EvalLimits::default();
        let run_then_pi = run(&program, &db, &limits)
            .expect("runs")
            .map_symbols(permute);
        let pi_then_run = run(&program, &db.map_symbols(permute), &limits).expect("runs");
        prop_assert!(run_then_pi.equiv(&pi_then_run));
    }

    #[test]
    fn switch_is_generic_per_entry(t in arb_table()) {
        // Switching on value v before permuting equals switching on π(v)
        // after permuting — the data parameter is permuted along.
        let name = Symbol::name("Out");
        for i in 1..=t.height() {
            for j in 1..=t.width() {
                let v = t.get(i, j);
                let lhs = ops::switch(&t, v, name).map_symbols(permute);
                let rhs = ops::switch(&t.map_symbols(permute), permute(v), name);
                prop_assert_eq!(&lhs, &rhs);
            }
        }
    }
}

/// Tagging operations are generic only up to the *choice* of new values
/// (condition (iv), determinacy) — checked by comparing shapes and the
/// non-fresh content.
#[test]
fn tagging_is_generic_up_to_fresh_choice() {
    let t = fixtures::sales_relation();
    let name = Symbol::name("Out");
    let a = ops::tuple_new(&t, Symbol::name("Id"), name).map_symbols(permute);
    let b = ops::tuple_new(&t.map_symbols(permute), Symbol::name("Id"), name);
    assert_eq!((a.height(), a.width()), (b.height(), b.width()));
    // Everything except the fresh column agrees.
    let a_body = a.select_cols(&(1..a.width()).collect::<Vec<_>>());
    let b_body = b.select_cols(&(1..b.width()).collect::<Vec<_>>());
    assert_eq!(a_body, b_body);
}
