//! **Theorem 4.4** at the integration level: transformations in the
//! normal form `P_Rep ∘ P ∘ P_Rep⁻¹`, their agreement between the native
//! and TA-compiled pipelines, and the defining conditions of a
//! *transformation* (§4.1) verified on the implementations.

mod common;

use proptest::prelude::*;
use tables_paradigm::canonical::normal_form::{drop_tables, rename_tables, transpose_all};
use tables_paradigm::prelude::*;

#[test]
fn transformations_agree_between_native_and_ta_pipelines() {
    let db = fixtures::sales_info1();
    for t in [rename_tables("Sales", "Orders"), transpose_all()] {
        let native = t.apply(&db, 1000).unwrap();
        let via_ta = t.apply_via_ta(&db, &EvalLimits::default()).unwrap();
        assert!(native.equiv(&via_ta), "{}: native vs TA mismatch", t.label);
    }
}

#[test]
fn transpose_all_on_random_databases() {
    let mut runner = proptest::test_runner::TestRunner::new(proptest::test_runner::Config {
        cases: 32,
        ..Default::default()
    });
    runner
        .run(&common::arb_database(), |db| {
            let out = transpose_all().apply(&db, 1000).expect("transform");
            let expected = Database::from_tables(db.tables().iter().map(|t| t.transpose()));
            prop_assert!(out.equiv(&expected));
            Ok(())
        })
        .unwrap();
}

#[test]
fn drop_tables_is_idempotent() {
    let db = fixtures::sales_info1_full();
    let t = drop_tables("GrandTotal");
    let once = t.apply(&db, 1000).unwrap();
    let twice = t.apply(&once, 1000).unwrap();
    assert!(once.equiv(&twice));
    assert_eq!(once.len(), db.len() - 1);
}

// ----------------------------------------------------------------------
// The definition of a transformation (§4.1): spot-check the conditions on
// our implementations.
// ----------------------------------------------------------------------

/// Condition (i), genericity: the transformation commutes with any
/// permutation of values that fixes names and ⊥.
#[test]
fn condition_i_genericity() {
    let db = fixtures::sales_info1();
    let permute = |s: Symbol| -> Symbol {
        match s {
            Symbol::Value(_) => {
                let text = s.text().unwrap();
                Symbol::value(&format!("{text}@"))
            }
            other => other,
        }
    };
    let t = transpose_all();
    let then_permute = t.apply(&db, 1000).unwrap().map_symbols(permute);
    let permute_then = t.apply(&db.map_symbols(permute), 1000).unwrap();
    assert!(then_permute.equiv(&permute_then));
}

/// Condition (ii): invariance under permutations of non-attribute rows
/// and columns of the input.
#[test]
fn condition_ii_permutation_invariance() {
    let rel = fixtures::sales_relation();
    let permuted = rel.select_rows(&[3, 1, 4, 2, 8, 6, 7, 5]);
    let t = rename_tables("Sales", "Orders");
    let a = t.apply(&Database::from_tables([rel]), 1000).unwrap();
    let b = t.apply(&Database::from_tables([permuted]), 1000).unwrap();
    assert!(a.equiv(&b));
}

/// Condition (iii): the set of database symbols can only grow (no value
/// invented by `transpose_all`, renaming adds the new name).
#[test]
fn condition_iii_symbols_grow() {
    let db = fixtures::sales_info2();
    let out = transpose_all().apply(&db, 1000).unwrap();
    let before = db.symbols();
    let after = out.symbols();
    assert!(before.weakly_contained_in(&after));
}

/// Condition (iv), determinacy: two runs differ only in the choice of new
/// values — for transformations that create none, they are equal.
#[test]
fn condition_iv_determinacy() {
    let db = fixtures::sales_info4();
    let t = transpose_all();
    let a = t.apply(&db, 1000).unwrap();
    let b = t.apply(&db, 1000).unwrap();
    assert!(a.equiv(&b));
}

/// A transformation whose middle program uses `new`: runs agree up to the
/// choice of fresh values (checked through the canonical representation's
/// own id-freshness — the decoded databases are equal because ids never
/// surface in decoded tables).
#[test]
fn condition_iv_with_value_creation() {
    use tables_paradigm::canonical::Transformation;
    // Tag every table occurrence id; the tags stay inside Rep and the
    // decode is unaffected, so apply() is deterministic at the database
    // level.
    let t = Transformation {
        label: "tag-and-ignore",
        fo: FoProgram::new().new_ids("Scratch", "Data", "Tag"),
    };
    let db = fixtures::sales_info1();
    let a = t.apply(&db, 1000).unwrap();
    let b = t.apply(&db, 1000).unwrap();
    assert!(a.equiv(&b));
    assert!(a.equiv(&db));
}
