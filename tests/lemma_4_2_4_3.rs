//! **Lemmas 4.2 / 4.3** at the integration level: the canonical
//! representation round-trips arbitrary tabular databases, satisfies the
//! `Rep` functional dependencies, and is computable by a generated tabular
//! algebra program on relational schemes.

mod common;

use proptest::prelude::*;
use tables_paradigm::canonical::{check_fds, decode, encode, encode_program, EncodeScheme};
use tables_paradigm::prelude::*;
use tables_paradigm::relational::RelDatabase;

#[test]
fn round_trip_on_random_databases() {
    let mut runner = proptest::test_runner::TestRunner::new(proptest::test_runner::Config {
        cases: 64,
        ..Default::default()
    });
    runner
        .run(&common::arb_database(), |db| {
            let rep = encode(&db);
            prop_assert_eq!(check_fds(&rep), None);
            let back = decode(&rep).expect("decode succeeds");
            prop_assert!(back.equiv(&db), "round trip changed the database");
            Ok(())
        })
        .unwrap();
}

#[test]
fn round_trip_on_all_fixtures_and_scales() {
    for db in [
        fixtures::sales_info1_full(),
        fixtures::sales_info2_full(),
        fixtures::sales_info3_full(),
        fixtures::sales_info4_full(),
        Database::from_tables([fixtures::make_sales_relation(30, 10)]),
        Database::from_tables([fixtures::make_sales_info2(20, 15)]),
        fixtures::make_sales_info4(12, 8),
    ] {
        let back = decode(&encode(&db)).unwrap();
        assert!(back.equiv(&db));
    }
}

#[test]
fn rep_size_is_linear_in_occurrences() {
    // |Data| = Σ m·n; |Map| = Σ (1 + m + n + m·n).
    let db = fixtures::make_sales_info4(7, 5);
    let rep = encode(&db);
    let expected_data: usize = db.tables().iter().map(|t| t.height() * t.width()).sum();
    let expected_map: usize = db
        .tables()
        .iter()
        .map(|t| 1 + t.height() + t.width() + t.height() * t.width())
        .sum();
    assert_eq!(rep.get_str("Data").unwrap().len(), expected_data);
    assert_eq!(rep.get_str("Map").unwrap().len(), expected_map);
}

#[test]
fn identifiers_are_fresh_across_encodings() {
    // Two encodings of the same database share no occurrence ids —
    // "canonical representations are unique up to the particular choice of
    // occurrence identifiers".
    let db = fixtures::sales_info1();
    let rep1 = encode(&db);
    let rep2 = encode(&db);
    let ids1: std::collections::HashSet<Symbol> = rep1
        .get_str("Map")
        .unwrap()
        .tuples()
        .map(|t| t[0])
        .collect();
    assert!(rep2
        .get_str("Map")
        .unwrap()
        .tuples()
        .all(|t| !ids1.contains(&t[0])));
    // Yet both decode to the same database.
    assert!(decode(&rep1).unwrap().equiv(&decode(&rep2).unwrap()));
}

#[test]
fn ta_encode_program_round_trips_relational_schemes() {
    // Lemma 4.2's P_Rep as an actual TA program (relational schemes).
    let scheme = EncodeScheme::new(&[("Sales", &["Part", "Region", "Sold"])]);
    let program = encode_program(&scheme).unwrap();
    for (parts, regions) in [(3, 3), (8, 6), (15, 10)] {
        let db = Database::from_tables([{
            let mut t = fixtures::make_sales_relation(parts, regions);
            t.set_name(Symbol::name("Sales"));
            t
        }]);
        let out = run_outputs(
            &program,
            &db,
            &[Symbol::name("Data"), Symbol::name("Map")],
            &EvalLimits::default(),
        )
        .unwrap();
        let rep =
            RelDatabase::from_tabular(&out, &[Symbol::name("Data"), Symbol::name("Map")]).unwrap();
        assert_eq!(check_fds(&rep), None);
        let back = decode(&rep).unwrap();
        assert!(back.equiv(&db), "{parts}×{regions}");
    }
}

#[test]
fn decode_accepts_permuted_attribute_orders() {
    // Lemma 4.3 is insensitive to the column order of Data/Map.
    let db = fixtures::sales_info1();
    let rep = encode(&db);
    let data = rep.get_str("Data").unwrap();
    let permuted = {
        use tables_paradigm::relational::Relation;
        let mut r = Relation::new("Data", &["Val", "Tbl", "Col", "Row"], &[]);
        for t in data.tuples() {
            r.insert(vec![t[3], t[0], t[2], t[1]]).unwrap();
        }
        r
    };
    let rep2 = RelDatabase::from_relations([permuted, rep.get_str("Map").unwrap().clone()]);
    assert!(decode(&rep2).unwrap().equiv(&db));
}
