//! Integration tests regenerating every figure of the paper from the
//! public API (experiment ids Fig. 1 – Fig. 5 in DESIGN.md).

use tables_paradigm::algebra::ops;
use tables_paradigm::prelude::*;

fn limits() -> EvalLimits {
    EvalLimits::default()
}

// ----------------------------------------------------------------------
// Figure 1
// ----------------------------------------------------------------------

/// The §3.4 chain turns the relational representation into the per-region
/// cross-tab.
#[test]
fn fig1_info1_to_info2() {
    let p = parse(
        "Sales <- GROUP[by {Region} on {Sold}](Sales)
         Sales <- CLEANUP[by {Part} on {_}](Sales)
         Sales <- PURGE[on {Sold} by {Region}](Sales)",
    )
    .unwrap();
    let out = run(&p, &fixtures::sales_info1(), &limits()).unwrap();
    assert!(out.equiv(&fixtures::sales_info2()));
}

/// Merge plus the ⊥-elimination derivation inverts the cross-tab.
#[test]
fn fig1_info2_to_info1() {
    let p = parse(
        "Flat  <- MERGE[on {Sold} by {Region}](Sales)
         Keys  <- PROJECT[{* \\ Sold}](Flat)
         VCol  <- PROJECT[{Sold}](Flat)
         VCol  <- DIFFERENCE(VCol, VCol)
         Pad   <- UNION(Keys, VCol)
         Flat  <- DIFFERENCE(Flat, Pad)
         Out   <- CLEANUP[by {*} on {_}](Flat)",
    )
    .unwrap();
    let out = run(&p, &fixtures::sales_info2(), &limits()).unwrap();
    let flat = out.table_str("Out").unwrap();
    let rel = fixtures::sales_relation();
    assert_eq!(flat.height(), rel.height());
    for i in 1..=rel.height() {
        let want = [rel.get(i, 1), rel.get(i, 2), rel.get(i, 3)];
        assert!(
            (1..=flat.height()).any(|k| flat.data_row(k) == want),
            "missing tuple {want:?}"
        );
    }
}

/// Split produces the one-table-per-region database.
#[test]
fn fig1_info1_to_info4() {
    let p = parse("Sales <- SPLIT[on {Region}](Sales)").unwrap();
    let out = run(&p, &fixtures::sales_info1(), &limits()).unwrap();
    assert!(out.equiv(&fixtures::sales_info4()));
}

/// Collapse plus redundancy removal inverts the split.
#[test]
fn fig1_info4_to_info1() {
    let p = parse(
        "Sales <- COLLAPSE[by {Region}](Sales)
         Sales <- PURGE[on {*} by {}](Sales)
         Sales <- CLEANUP[by {*} on {_}](Sales)",
    )
    .unwrap();
    let out = run(&p, &fixtures::sales_info4(), &limits()).unwrap();
    let t = out.table_str("Sales").unwrap();
    assert_eq!(t.height(), fixtures::sales_relation().height());
    assert_eq!(t.width(), 3);
}

/// SalesInfo2 → SalesInfo4: cross-tab to per-region tables, staying inside
/// the algebra (unpivot, then split).
#[test]
fn fig1_info2_to_info4() {
    let info2 = fixtures::sales_info2();
    let flat = unpivot(
        info2.table_str("Sales").unwrap(),
        Symbol::name("Sold"),
        Symbol::name("Region"),
        &limits(),
    )
    .unwrap();
    let p = parse("Sales <- SPLIT[on {Region}](Sales)").unwrap();
    let out = run(&p, &Database::from_tables([flat]), &limits()).unwrap();
    assert!(out.equiv(&fixtures::sales_info4()));
}

/// SalesInfo4 → SalesInfo2: per-region tables to cross-tab.
#[test]
fn fig1_info4_to_info2() {
    let p = parse(
        "Sales <- COLLAPSE[by {Region}](Sales)
         Sales <- PURGE[on {*} by {}](Sales)
         Sales <- CLEANUP[by {*} on {_}](Sales)
         Sales <- GROUP[by {Region} on {Sold}](Sales)
         Sales <- CLEANUP[by {Part} on {_}](Sales)
         Sales <- PURGE[on {Sold} by {Region}](Sales)",
    )
    .unwrap();
    let out = run(&p, &fixtures::sales_info4(), &limits()).unwrap();
    assert!(
        out.equiv(&fixtures::sales_info2()),
        "got:\n{out}\nexpected:\n{}",
        fixtures::sales_info2()
    );
}

/// SalesInfo3 → SalesInfo1: row/column names are *data*, so the generic
/// route is the Theorem 4.4 normal form (`matrix_to_relation`); with it,
/// every representation of Figure 1 reaches every other.
#[test]
fn fig1_info3_to_info1() {
    use tables_paradigm::canonical::normal_form::matrix_to_relation;
    let out = matrix_to_relation("Sales", "Region", "Part", "Sold")
        .apply(&fixtures::sales_info3(), 1000)
        .unwrap();
    assert!(out.equiv(&fixtures::sales_info1()));
}

/// SalesInfo1 → SalesInfo3, also via the normal form (the inverse of
/// `fig1_info3_to_info1`).
#[test]
fn fig1_info1_to_info3() {
    use tables_paradigm::canonical::normal_form::relation_to_matrix;
    let out = relation_to_matrix("Sales", "Region", "Part", "Sold")
        .apply(&fixtures::sales_info1(), 1000)
        .unwrap();
    assert!(out.equiv(&fixtures::sales_info3()));
}

/// The cube view reproduces SalesInfo3, and totals absorb as in the
/// regular-outline parts of Figure 1.
#[test]
fn fig1_info3_and_summaries() {
    let cube = Cube::from_table(
        &fixtures::sales_relation(),
        &[Symbol::name("Region"), Symbol::name("Part")],
        Symbol::name("Sold"),
        Agg::Sum,
    )
    .unwrap();
    let info3 = fixtures::sales_info3();
    assert!(cube
        .to_table_2d()
        .unwrap()
        .equiv(info3.table_str("Sales").unwrap()));

    // Summary relations of SalesInfo1-full.
    let full = fixtures::sales_info1_full();
    let parts = summarize(
        &fixtures::sales_relation(),
        &[Symbol::name("Part")],
        Symbol::name("Sold"),
        Agg::Sum,
        "TotalPartSales",
        "Total",
    )
    .unwrap();
    assert!(parts.equiv(full.table_str("TotalPartSales").unwrap()));
    assert_eq!(
        grand_total(&fixtures::sales_relation(), Symbol::name("Sold"), Agg::Sum).unwrap(),
        Some(420.0)
    );
}

// ----------------------------------------------------------------------
// Figure 2
// ----------------------------------------------------------------------

#[test]
fn fig2_table_regions() {
    let info2 = fixtures::sales_info2();
    let t = info2.table_str("Sales").unwrap();
    assert_eq!(t.name(), Symbol::name("Sales"));
    assert_eq!(t.col_attrs()[0], Symbol::name("Part"));
    assert_eq!(t.row_attr(1), Symbol::name("Region"));
    assert_eq!(t.get(2, 2), Symbol::value("50"));
}

// ----------------------------------------------------------------------
// Figure 3
// ----------------------------------------------------------------------

#[test]
fn fig3_union_difference_product() {
    let r = Table::relational("R", &["A", "B"], &[&["1", "2"], &["3", "4"]]);
    let s = Table::relational("S", &["B", "C"], &[&["2", "9"]]);
    let u = ops::union(&r, &s, Symbol::name("U"));
    assert_eq!((u.height(), u.width()), (3, 4));
    // Padding is ⊥, attributes concatenate.
    assert_eq!(
        u.col_attrs(),
        &[
            Symbol::name("A"),
            Symbol::name("B"),
            Symbol::name("B"),
            Symbol::name("C")
        ]
    );
    let d = ops::difference(&r, &r, Symbol::name("D"));
    assert_eq!(d.height(), 0);
    let p = ops::product(&r, &s, Symbol::name("P"));
    assert_eq!((p.height(), p.width()), (2, 4));
}

// ----------------------------------------------------------------------
// Figures 4 and 5 — exact golden tables
// ----------------------------------------------------------------------

#[test]
fn fig4_group_exact() {
    let p = parse("Sales <- GROUP[by {Region} on {Sold}](Sales)").unwrap();
    let out = run(&p, &fixtures::sales_info1(), &limits()).unwrap();
    assert_eq!(
        out.table_str("Sales").unwrap(),
        &fixtures::figure4_grouped()
    );
}

#[test]
fn fig5_merge_exact() {
    let p = parse("Sales <- MERGE[on {Sold} by {Region}](Sales)").unwrap();
    let out = run(&p, &fixtures::sales_info2(), &limits()).unwrap();
    assert_eq!(out.table_str("Sales").unwrap(), &fixtures::figure5_merged());
}

/// The §3.4 narrative in full: clean-up groups the Figure 4 result per
/// part, purge recovers SalesInfo2, and merging Figure 4's output is the
/// "even more uneconomical" representation.
#[test]
fn fig4_fig5_narrative() {
    let db = Database::from_tables([fixtures::figure4_grouped()]);
    let p = parse(
        "Sales <- CLEANUP[by {Part} on {_}](Sales)
         Sales <- PURGE[on {Sold} by {Region}](Sales)",
    )
    .unwrap();
    let out = run(&p, &db, &limits()).unwrap();
    assert!(out.equiv(&fixtures::sales_info2()));

    let merge_grouped = parse("Sales <- MERGE[on {Sold} by {Region}](Sales)").unwrap();
    let db2 = Database::from_tables([fixtures::figure4_grouped()]);
    let out2 = run(&merge_grouped, &db2, &limits()).unwrap();
    assert_eq!(out2.table_str("Sales").unwrap().height(), 64);
}
