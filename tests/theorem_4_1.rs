//! **Theorem 4.1** at the integration level: `FO + while + new` programs
//! agree between the reference interpreter and the compiled tabular
//! algebra program, on fixed workloads and on randomized inputs.

mod common;

use tables_paradigm::prelude::*;
use tables_paradigm::relational::compile::run_compiled;
use tables_paradigm::relational::program::transitive_closure_program;

fn agree(p: &FoProgram, db: &RelDatabase, outputs: &[&str]) {
    let direct = p.run(db, 10_000).expect("direct run");
    let via_ta = run_compiled(p, db, outputs, &EvalLimits::default()).expect("TA run");
    for out in outputs {
        assert!(
            direct
                .get_str(out)
                .expect("direct output")
                .equiv(via_ta.get_str(out).expect("TA output")),
            "output {out} differs"
        );
    }
}

#[test]
fn algebra_operations_agree_on_randomized_inputs() {
    type NamedProgram = (&'static str, fn() -> FoProgram);
    let programs: Vec<NamedProgram> = vec![
        ("union", || {
            FoProgram::new().assign("Out", RelExpr::rel("R").union(RelExpr::rel("S")))
        }),
        ("difference", || {
            FoProgram::new().assign("Out", RelExpr::rel("R").minus(RelExpr::rel("S")))
        }),
        ("join", || {
            FoProgram::new().assign(
                "Out",
                RelExpr::rel("R")
                    .times(RelExpr::rel("S").rename("A", "C").rename("B", "D"))
                    .select("B", "C")
                    .project(&["A", "D"]),
            )
        }),
        ("composition", || {
            FoProgram::new()
                .assign("T1", RelExpr::rel("R").project(&["A"]))
                .assign("T2", RelExpr::rel("S").project(&["A"]))
                .assign("Out", RelExpr::rel("T1").minus(RelExpr::rel("T2")))
        }),
        ("self-join-select", || {
            FoProgram::new().assign("Out", RelExpr::rel("R").select("A", "B"))
        }),
    ];

    let mut runner = proptest::test_runner::TestRunner::new(proptest::test_runner::Config {
        cases: 24,
        ..Default::default()
    });
    runner
        .run(&common::arb_rel_database(), |db| {
            for (_name, mk) in &programs {
                agree(&mk(), &db, &["Out"]);
            }
            Ok(())
        })
        .unwrap();
}

#[test]
fn transitive_closure_agrees_on_random_graphs() {
    let edges = proptest::collection::vec((0u8..5, 0u8..5), 0..10);
    let mut runner = proptest::test_runner::TestRunner::new(proptest::test_runner::Config {
        cases: 16,
        ..Default::default()
    });
    runner
        .run(&edges, |pairs| {
            let mut e = Relation::new("E", &["From", "To"], &[]);
            for (a, b) in pairs {
                e.insert(vec![
                    Symbol::value(&format!("n{a}")),
                    Symbol::value(&format!("n{b}")),
                ])
                .expect("arity");
            }
            let db = RelDatabase::from_relations([e]);
            agree(&transitive_closure_program(), &db, &["TC"]);
            Ok(())
        })
        .unwrap();
}

#[test]
fn transitive_closure_on_known_graphs() {
    // A chain, a cycle, and a diamond.
    let cases: Vec<(&[(&str, &str)], usize)> = vec![
        (&[("a", "b"), ("b", "c"), ("c", "d")], 6),
        (&[("a", "b"), ("b", "a")], 4),
        (&[("a", "b"), ("a", "c"), ("b", "d"), ("c", "d")], 5),
    ];
    for (edges, expected) in cases {
        let mut e = Relation::new("E", &["From", "To"], &[]);
        for (a, b) in edges {
            e.insert(vec![Symbol::value(a), Symbol::value(b)]).unwrap();
        }
        let db = RelDatabase::from_relations([e]);
        let direct = transitive_closure_program().run(&db, 1000).unwrap();
        assert_eq!(direct.get_str("TC").unwrap().len(), expected);
        agree(&transitive_closure_program(), &db, &["TC"]);
    }
}

#[test]
fn new_values_agree_up_to_isomorphism() {
    use tables_paradigm::relational::canonicalize_fresh;
    let db = RelDatabase::from_relations([Relation::new(
        "R",
        &["A", "B"],
        &[&["1", "2"], &["3", "4"], &["5", "6"]],
    )]);
    let p = FoProgram::new()
        .new_ids("Tagged", "R", "Id")
        .assign("Out", RelExpr::rel("Tagged").project(&["A", "Id"]));
    let direct = canonicalize_fresh(&p.run(&db, 100).unwrap());
    let via_ta =
        canonicalize_fresh(&run_compiled(&p, &db, &["Out"], &EvalLimits::default()).unwrap());
    assert!(direct
        .get_str("Out")
        .unwrap()
        .equiv(via_ta.get_str("Out").unwrap()));
}

#[test]
fn while_program_with_data_dependent_iteration_count() {
    // Strip one "layer" per iteration: delete tuples whose A appears as a
    // B elsewhere, until fixpoint. Iteration count depends on the data.
    let peel = FoProgram::new()
        .assign("Cur", RelExpr::rel("R"))
        .assign("Blocked", {
            // Tuples (A,B) with A occurring in some B column.
            RelExpr::rel("Cur")
                .times(RelExpr::rel("Cur").rename("A", "A2").rename("B", "B2"))
                .select("A", "B2")
                .project(&["A", "B"])
        })
        .assign("Delta", RelExpr::rel("Blocked"))
        .while_nonempty(
            "Delta",
            FoProgram::new()
                .assign("Cur", RelExpr::rel("Cur").minus(RelExpr::rel("Blocked")))
                .assign("Blocked", {
                    RelExpr::rel("Cur")
                        .times(RelExpr::rel("Cur").rename("A", "A2").rename("B", "B2"))
                        .select("A", "B2")
                        .project(&["A", "B"])
                })
                .assign("Delta", RelExpr::rel("Blocked")),
        );
    let db = RelDatabase::from_relations([Relation::new(
        "R",
        &["A", "B"],
        &[&["1", "2"], &["2", "3"], &["3", "4"], &["9", "9"]],
    )]);
    agree(&peel, &db, &["Cur"]);
}
