//! **Theorem 4.5** at the integration level: SchemaLog_d programs agree
//! between the native stratified evaluator and the tabular algebra
//! translation, across querying, restructuring, negation, recursion, and
//! randomized inputs.

mod common;

use tables_paradigm::prelude::*;
use tables_paradigm::schemalog::{
    eval::{eval, SlLimits, Strategy},
    parser::parse as sl_parse,
    quads::QuadDb,
    translate::{run_fo, run_translated},
};

fn agree(src: &str, input: &QuadDb) {
    let p = sl_parse(src).expect("parses");
    let native = eval(&p, input, Strategy::SemiNaive, &SlLimits::default()).expect("native");
    let naive = eval(&p, input, Strategy::Naive, &SlLimits::default()).expect("naive");
    assert_eq!(native.len(), naive.len(), "semi-naive vs naive");
    let via_ta = run_translated(&p, input, &EvalLimits::default()).expect("TA");
    assert_eq!(native.len(), via_ta.len(), "native vs TA sizes");
    for q in native.iter() {
        assert!(via_ta.contains(q), "TA path missing {q:?}");
    }
}

fn sales_db() -> QuadDb {
    QuadDb::from_relations(&RelDatabase::from_relations([
        Relation::new(
            "sales",
            &["part", "region"],
            &[
                &["nuts", "east"],
                &["nuts", "west"],
                &["bolts", "east"],
                &["screws", "north"],
            ],
        ),
        Relation::new("hot", &["region"], &[&["east"]]),
    ]))
}

#[test]
fn querying_and_restructuring_programs() {
    // Join with a second relation.
    agree(
        "hotsales[T : part -> P] :-
            sales[T : part -> P], sales[T : region -> R], hot[U : region -> R].",
        &sales_db(),
    );
    // Attribute-variable restructuring (metadata as data).
    agree("attrs[T : name -> A] :- sales[T : A -> V].", &sales_db());
    // Dynamic heads: relation-per-region (the SchemaLog SPLIT).
    agree(
        "R[T : part -> P] :- sales[T : region -> R], sales[T : part -> P].",
        &sales_db(),
    );
    // Attribute transposition: swap attr and value roles.
    agree("swapped[T : V -> A] :- sales[T : A -> V].", &sales_db());
}

#[test]
fn negation_recursion_and_builtins() {
    agree(
        "
        cold[T : part -> P] :- sales[T : part -> P], not hot[U : region -> R2],
                               sales[T : region -> R2].
        ",
        &sales_db(),
    );
    agree(
        "
        different[T : part -> P] :- sales[T : part -> P], sales[T : region -> R], P != R.
        ",
        &sales_db(),
    );
    let edges = QuadDb::from_relations(&RelDatabase::from_relations([Relation::new(
        "edge",
        &["from", "to"],
        &[&["a", "b"], &["b", "c"], &["c", "a"]],
    )]));
    agree(
        "
        tc[T : from -> X, to -> Y] :- edge[T : from -> X, to -> Y].
        tc[T : from -> X, to -> Z] :- tc[T : from -> X, to -> Y],
                                      edge[U : from -> Y, to -> Z].
        ",
        &edges,
    );
}

#[test]
fn randomized_inputs() {
    let mut runner = proptest::test_runner::TestRunner::new(proptest::test_runner::Config {
        cases: 12,
        ..Default::default()
    });
    runner
        .run(&common::arb_rel_database(), |db| {
            let quads = QuadDb::from_relations(&db);
            agree(
                "
                out[T : a -> X] :- R[T : A -> X], S[U : B2 -> X].
                flip[T : A2 -> V] :- R[T : A2 -> V].
                ",
                &quads,
            );
            Ok(())
        })
        .unwrap();
}

#[test]
fn fo_and_ta_layers_agree() {
    // The two halves of the reduction (rules → FO, FO → TA) individually
    // preserve semantics.
    let p = sl_parse("R[T : part -> P] :- sales[T : region -> R], sales[T : part -> P].").unwrap();
    let input = sales_db();
    let via_fo = run_fo(&p, &input, 10_000).unwrap();
    let via_ta = run_translated(&p, &input, &EvalLimits::default()).unwrap();
    assert_eq!(via_fo.len(), via_ta.len());
    for q in via_fo.iter() {
        assert!(via_ta.contains(q));
    }
}

#[test]
fn outputs_reassemble_into_relations() {
    let p = sl_parse(
        "report[T : part -> P, region -> R] :-
            sales[T : part -> P], sales[T : region -> R].",
    )
    .unwrap();
    let out = eval(&p, &sales_db(), Strategy::SemiNaive, &SlLimits::default()).unwrap();
    let rels = out.to_relations(&[Symbol::name("report")]);
    let report = rels.get_str("report").unwrap();
    assert_eq!(report.len(), 4);
    assert_eq!(report.arity(), 2);
}

/// The paper's framing: SchemaLog_d restructures *between* the Figure 1
/// representations. Flatten a SalesInfo2-shaped database (regions as data
/// in a header relation) into SalesInfo1 shape.
#[test]
fn schemalog_expresses_figure1_restructurings() {
    // Per-region relations (SalesInfo4 shape, lowercase) → one relation.
    let db = RelDatabase::from_relations([
        Relation::new(
            "east",
            &["part", "sold"],
            &[&["nuts", "50"], &["bolts", "70"]],
        ),
        Relation::new("west", &["part", "sold"], &[&["nuts", "60"]]),
        // Relation *names* are stored as name-sorted symbols (`n:` tag):
        // SchemaLog's first-class names made explicit in the two-sorted
        // symbol universe.
        Relation::new("regions", &["name"], &[&["n:east"], &["n:west"]]),
    ]);
    let quads = QuadDb::from_relations(&db);
    let src = "
        sales[T : part -> P, region -> R, sold -> S] :-
            regions[U : name -> R], R[T : part -> P], R[T : sold -> S].
    ";
    agree(src, &quads);
    let p = sl_parse(src).unwrap();
    let out = eval(&p, &quads, Strategy::SemiNaive, &SlLimits::default()).unwrap();
    let sales = out.to_relations(&[Symbol::name("sales")]);
    assert_eq!(sales.get_str("sales").unwrap().len(), 3);
}
