//! Property-based tests on the core data structures and the algebra's
//! invariants, over arbitrary (messy) tables: duplicated attributes, data
//! in attribute positions, ⊥ everywhere.

mod common;

use common::{arb_database, arb_fact_table, arb_symbol, arb_table, arb_value};
use proptest::prelude::*;
use tables_paradigm::algebra::ops;
use tables_paradigm::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    // ------------------------------------------------------------------
    // Model-level invariants (§2)
    // ------------------------------------------------------------------

    #[test]
    fn transpose_is_involutive(t in arb_table()) {
        prop_assert_eq!(t.transpose().transpose(), t);
    }

    #[test]
    fn canonicalize_is_idempotent(t in arb_table()) {
        let c = t.canonicalize();
        prop_assert_eq!(c.canonicalize(), c);
    }

    #[test]
    fn equiv_is_reflexive_and_permutation_blind(t in arb_table()) {
        prop_assert!(t.equiv(&t));
        if t.height() >= 2 {
            let mut rows: Vec<usize> = (1..=t.height()).collect();
            rows.reverse();
            prop_assert!(t.equiv(&t.select_rows(&rows)));
        }
        if t.width() >= 2 {
            let mut cols: Vec<usize> = (1..=t.width()).collect();
            cols.rotate_left(1);
            prop_assert!(t.equiv(&t.select_cols(&cols)));
        }
    }

    #[test]
    fn weak_equality_laws(a in arb_symbol(), b in arb_symbol()) {
        // weak_eq is reflexive and symmetric; ⊥ relates to everything.
        prop_assert!(a.weak_eq(a));
        prop_assert_eq!(a.weak_eq(b), b.weak_eq(a));
        prop_assert!(Symbol::Null.weak_eq(a));
    }

    #[test]
    fn join_is_commutative_and_respects_subsumption(a in arb_symbol(), b in arb_symbol()) {
        prop_assert_eq!(a.join(b), b.join(a));
        if let Some(j) = a.join(b) {
            prop_assert!(a.subsumed_by(j));
            prop_assert!(b.subsumed_by(j));
        }
    }

    #[test]
    fn row_subsumption_is_reflexive_and_transitive_on_padding(t in arb_table()) {
        for i in 1..=t.height() {
            prop_assert!(t.row_subsumed_by(i, &t, i));
        }
    }

    // ------------------------------------------------------------------
    // Partition-parallel join ≡ serial join, byte for byte.
    // ------------------------------------------------------------------

    /// `join_partitioned` must equal `join` exactly — header, row order,
    /// row attributes — on arbitrary messy operands (⊥ keys join ⊥ keys,
    /// duplicated keys fan out, data in attribute positions) for every
    /// shard count 1..=8 and pool size, with the per-shard row counts
    /// summing to the output height.
    #[test]
    fn join_partitioned_matches_join_exactly(
        r in arb_table(),
        s in arb_table(),
        kl in 0usize..8,
        kr in 0usize..8,
        shards in 1usize..=8,
        threads in 1usize..=4,
    ) {
        use tables_paradigm::algebra::pool::ShardPool;
        prop_assume!(r.width() >= 1 && s.width() >= 1);
        let cols = ops::JoinCols {
            left: 1 + kl % r.width(),
            right: 1 + kr % s.width(),
        };
        let name = Symbol::name("T");
        let serial = ops::join(&r, &s, cols, name);
        let pool = ShardPool::new(threads);
        let (part, report) = ops::join_partitioned(
            &r, &s, cols, name, &pool, shards, &|| Ok(()), &mut |_| Ok(()),
        ).unwrap();
        prop_assert_eq!(&part, &serial, "partitioned join must be byte-identical");
        prop_assert_eq!(report.iter().map(|p| p.rows).sum::<usize>(), serial.height());
        prop_assert!(report.len() <= shards);
    }

    // ------------------------------------------------------------------
    // Storage engine: structural sharing never leaks writes.
    // ------------------------------------------------------------------

    #[test]
    fn snapshot_mutation_never_alters_the_original(db in arb_database()) {
        use tables_paradigm::core::io::to_csv;
        // An independent materialization of the original contents: handle
        // equality would pass even if a write leaked through a shared
        // buffer, rendered bytes cannot.
        let before: Vec<String> = db.tables().iter().map(to_csv).collect();

        // Route 1: in-store writes on a snapshot.
        let mut snap = db.snapshot();
        for name in db.names().iter() {
            snap.update_named(name, |t| {
                t.push_row(vec![Symbol::value("mutant"); t.width() + 1]);
                t.set(1, 0, Symbol::value("mutant"));
            });
        }
        snap.insert(Table::relational("Mutant", &["A"], &[&["1"]]));
        snap.retain(|t| t.height() > 1);

        // Route 2: direct writes through a handle cloned out of a snapshot.
        let snap2 = db.snapshot();
        for t in snap2.tables() {
            let mut h = t.clone();
            prop_assert!(h.shares_cells_with(t));
            for i in 1..=h.height() {
                for j in 0..=h.width() {
                    h.set(i, j, Symbol::value("x"));
                }
            }
            prop_assert!(!h.shares_cells_with(t));
        }

        let after: Vec<String> = db.tables().iter().map(to_csv).collect();
        prop_assert_eq!(before, after);
    }

    #[test]
    fn shared_and_unshared_tables_round_trip_identically(t in arb_table()) {
        use tables_paradigm::core::io::{from_csv, to_csv};
        let shared = t.clone();
        prop_assert!(shared.shares_cells_with(&t));
        // Rebuild an unshared twin cell by cell.
        let mut unshared = Table::new(t.name(), t.height(), t.width());
        for i in 0..=t.height() {
            for j in 0..=t.width() {
                unshared.set(i, j, t.get(i, j));
            }
        }
        prop_assert!(!unshared.shares_cells_with(&t));
        let bytes_shared = to_csv(&shared);
        let bytes_unshared = to_csv(&unshared);
        prop_assert_eq!(&bytes_shared, &bytes_unshared);
        let back = from_csv(&bytes_shared).expect("csv round trip");
        prop_assert_eq!(back, t);
    }

    // ------------------------------------------------------------------
    // Traditional operations (§3.1)
    // ------------------------------------------------------------------

    #[test]
    fn union_height_and_width_add(a in arb_table(), b in arb_table()) {
        let u = ops::union(&a, &b, Symbol::name("U"));
        prop_assert_eq!(u.height(), a.height() + b.height());
        prop_assert_eq!(u.width(), a.width() + b.width());
    }

    #[test]
    fn difference_with_self_is_empty(t in arb_table()) {
        prop_assert_eq!(ops::difference(&t, &t, Symbol::name("D")).height(), 0);
    }

    #[test]
    fn difference_never_grows(a in arb_table(), b in arb_table()) {
        let d = ops::difference(&a, &b, Symbol::name("D"));
        prop_assert!(d.height() <= a.height());
        // Every surviving row is a row of a.
        for i in 1..=d.height() {
            prop_assert!((1..=a.height()).any(|k| a.storage_row(k) == d.storage_row(i)));
        }
    }

    #[test]
    fn intersection_is_commutative_up_to_content(a in arb_table(), b in arb_table()) {
        let x = ops::intersect(&a, &b, Symbol::name("I"));
        let y = ops::intersect(&b, &a, Symbol::name("I"));
        // Same number of matched rows both ways (contents live in each
        // operand's own scheme, so compare cardinality).
        prop_assert_eq!(x.height(), y.height());
    }

    #[test]
    fn product_cardinality(a in arb_table(), b in arb_table()) {
        let p = ops::product(&a, &b, Symbol::name("P"));
        prop_assert_eq!(p.height(), a.height() * b.height());
    }

    #[test]
    fn project_star_is_identity_on_columns(t in arb_table()) {
        let p = ops::project(&t, &t.scheme(), Symbol::name("P"));
        prop_assert_eq!(p.width(), t.width());
        prop_assert_eq!(p.height(), t.height());
    }

    #[test]
    fn select_keeps_a_subset(t in arb_table(), a in arb_symbol(), b in arb_symbol()) {
        let s = ops::select(&t, a, b, Symbol::name("S"));
        prop_assert!(s.height() <= t.height());
    }

    #[test]
    fn rename_then_rename_back(t in arb_table(), v in arb_value()) {
        // Renaming to a fresh attribute and back is the identity whenever
        // the new name did not already occur.
        let fresh = Symbol::name("FreshAttr!");
        prop_assume!(!t.scheme().contains(fresh));
        let renamed = ops::rename(&t, v, fresh, t.name());
        let back = ops::rename(&renamed, fresh, v, t.name());
        prop_assert_eq!(back, t);
    }

    // ------------------------------------------------------------------
    // Restructuring (§3.2) and redundancy removal (§3.4)
    // ------------------------------------------------------------------

    #[test]
    fn group_preserves_information(t in arb_fact_table()) {
        // group then merge then ⊥-elimination recovers the original rows.
        let by = SymbolSet::from_iter([Symbol::name("C")]);
        let on = SymbolSet::from_iter([Symbol::name("M")]);
        let g = ops::group(&t, &by, &on, Symbol::name("G"));
        let m = ops::merge(&g, &on, &by, Symbol::name("M2"));
        // Every original tuple appears as a row of the merged table.
        for i in 1..=t.height() {
            let want = [t.get(i, 1), t.get(i, 2), t.get(i, 3)];
            prop_assert!(
                (1..=m.height()).any(|k| {
                    let row = m.data_row(k);
                    row.contains(&want[0]) && row.contains(&want[1]) && row.contains(&want[2])
                }),
                "tuple {:?} lost by group∘merge", want
            );
        }
    }

    #[test]
    fn split_partitions_the_rows(t in arb_fact_table()) {
        let on = SymbolSet::from_iter([Symbol::name("C")]);
        let parts = ops::split(&t, &on, Symbol::name("S"));
        let data_rows: usize = parts.iter().map(|p| p.height().saturating_sub(1)).sum();
        prop_assert_eq!(data_rows, t.height());
        // Each part has exactly one header row (row attribute C).
        for p in &parts {
            let headers = (1..=p.height())
                .filter(|&i| p.get(i, 0) == Symbol::name("C"))
                .count();
            prop_assert_eq!(headers, 1);
        }
    }

    #[test]
    fn merge_inverts_group_on_cleaned_tables(t in arb_fact_table()) {
        // Figure 4/5 round trip, property-style. The paper notes the
        // merged-back table "yields a representation of the table, but
        // which is even more uneconomical": the grouping pads sparse
        // (K, C) combinations with ⊥-rows that survive clean-up, so the
        // round trip holds up to *weak equivalence* (mutual row
        // subsumption), the paper's notion of same information content.
        let by = SymbolSet::from_iter([Symbol::name("C")]);
        let on = SymbolSet::from_iter([Symbol::name("M")]);
        let g = ops::group(&t, &by, &on, Symbol::name("G"));
        let m = ops::merge(&g, &on, &by, Symbol::name("M2"));
        let purged = ops::purge(&m, &m.scheme(), &SymbolSet::new(), t.name());
        let cleaned = ops::cleanup(&purged, &purged.scheme(), &purged.row_scheme(), t.name());
        for i in 1..=t.height() {
            prop_assert!(
                (1..=cleaned.height()).any(|k| t.row_subsumed_by(i, &cleaned, k)),
                "original row {i} lost by merge ∘ group:\noriginal:\n{t}\nrecovered:\n{cleaned}"
            );
        }
        for k in 1..=cleaned.height() {
            // Rows with ⊥ under M are the grouping's padding for sparse
            // (K, C) combinations — carrying no information, they are
            // weakly below everything and exempt from soundness.
            let m_entries = cleaned.row_entries_named(k, Symbol::name("M"));
            if m_entries.iter().all(|s| s.is_null()) {
                continue;
            }
            prop_assert!(
                (1..=t.height()).any(|i| cleaned.row_subsumed_by(k, &t, i)),
                "merge ∘ group invented row {k}:\noriginal:\n{t}\nrecovered:\n{cleaned}"
            );
        }
    }

    #[test]
    fn collapse_inverts_split_on_cleaned_tables(t in arb_fact_table()) {
        let on = SymbolSet::from_iter([Symbol::name("C")]);
        let parts = ops::split(&t, &on, t.name());
        let refs: Vec<&Table> = parts.iter().collect();
        let collapsed = ops::collapse(&refs, &on, t.name());
        let purged = ops::purge(&collapsed, &collapsed.scheme(), &SymbolSet::new(), t.name());
        let cleaned = ops::cleanup(&purged, &purged.scheme(), &purged.row_scheme(), t.name());
        prop_assert!(
            cleaned.equiv(&t.dedup_rows()),
            "collapse ∘ split failed to round-trip:\noriginal:\n{t}\nrecovered:\n{cleaned}"
        );
    }

    #[test]
    fn transpose_round_trips_on_cleaned_tables(t in arb_table()) {
        // The involution holds on any table; on a cleaned table the
        // cleaned form is preserved as well (clean-up and transposition
        // commute through the purge duality).
        let cleaned = ops::cleanup(&t, &t.scheme(), &t.row_scheme(), t.name());
        prop_assert_eq!(cleaned.transpose().transpose(), cleaned);
    }

    #[test]
    fn purge_is_idempotent(t in arb_table()) {
        let on = t.scheme();
        let by = t.row_scheme();
        let once = ops::purge(&t, &on, &by, t.name());
        let twice = ops::purge(&once, &on, &by, t.name());
        prop_assert_eq!(&once, &twice, "purge not idempotent on:\n{}", t);
    }

    #[test]
    fn cleanup_is_idempotent_and_shrinking(t in arb_table()) {
        let by = t.scheme();
        let on = t.row_scheme();
        let once = ops::cleanup(&t, &by, &on, t.name());
        prop_assert!(once.height() <= t.height());
        let twice = ops::cleanup(&once, &by, &on, t.name());
        prop_assert_eq!(once, twice);
    }

    #[test]
    fn cleanup_output_subsumes_input_rows(t in arb_table()) {
        let by = SymbolSet::new();
        let on = t.row_scheme();
        let c = ops::cleanup(&t, &by, &on, t.name());
        for i in 1..=t.height() {
            prop_assert!(
                (1..=c.height()).any(|k| t.get(i, 0) == c.get(k, 0)
                    && t.row_subsumed_by(i, &c, k)),
                "input row {} not subsumed", i
            );
        }
    }

    #[test]
    fn classical_union_is_idempotent_commutative(t in arb_fact_table()) {
        let u = ops::classical_union(&t, &t, t.name());
        prop_assert!(u.equiv(&t.dedup_rows()), "u:\n{u}\nt:\n{t}");
    }

    // ------------------------------------------------------------------
    // Transposition duality (§3.3)
    // ------------------------------------------------------------------

    #[test]
    fn purge_is_the_transposed_cleanup(t in arb_table()) {
        let on = t.scheme();
        let by = t.row_scheme();
        let direct = ops::purge(&t, &on, &by, t.name());
        let via_transpose = {
            let flipped = t.transpose();
            let cleaned = ops::cleanup(&flipped, &by, &on, t.name());
            let mut back = cleaned.transpose();
            back.set_name(t.name());
            back
        };
        prop_assert_eq!(direct, via_transpose);
    }

    // ------------------------------------------------------------------
    // Canonical representation (Lemmas 4.2/4.3) — also covered in
    // lemma_4_2_4_3.rs; kept here as the headline invariant.
    // ------------------------------------------------------------------

    #[test]
    fn canonical_round_trip(db in arb_database()) {
        use tables_paradigm::canonical::{decode, encode};
        let back = decode(&encode(&db)).expect("decode");
        prop_assert!(back.equiv(&db));
    }

    // ------------------------------------------------------------------
    // OLAP: algebraic pivot equals the hand-coded baseline.
    // ------------------------------------------------------------------

    #[test]
    fn pivot_matches_baseline(t in arb_fact_table()) {
        prop_assume!(t.height() > 0);
        let algebraic = pivot(
            &t,
            Symbol::name("C"),
            Symbol::name("M"),
            &EvalLimits::default(),
        ).expect("pivot");
        let direct = tables_paradigm::olap::baseline::pivot_direct(
            &t,
            Symbol::name("C"),
            Symbol::name("M"),
        ).expect("baseline");
        prop_assert!(algebraic.equiv(&direct), "algebraic:\n{algebraic}\ndirect:\n{direct}");
    }

    // ------------------------------------------------------------------
    // Join fusion (optimizer): FUSEDJOIN ≡ SELECT ∘ PRODUCT
    // ------------------------------------------------------------------

    #[test]
    fn fused_join_op_equals_select_over_product(
        mut r in arb_table(),
        mut s in arb_table(),
        a in arb_symbol(),
        b in arb_symbol(),
    ) {
        // The fused operator is *defined* as SELECT[a=b](PRODUCT(R, S)):
        // whether the hash kernel applies or evaluation falls back to the
        // materialized product, the results must be identical — on messy
        // tables too (repeated attributes, ⊥-heavy rows, data in
        // attribute positions, attributes absent from either operand).
        r.set_name(Symbol::name("R"));
        s.set_name(Symbol::name("S"));
        let db = Database::from_tables([r, s]);
        let select = OpKind::Select { a: Param::sym(a), b: Param::sym(b) };
        let fused = Program::new().assign(
            Param::name("T"),
            OpKind::FusedJoin { a: Param::sym(a), b: Param::sym(b) },
            vec![Param::name("R"), Param::name("S")],
        );
        let pipeline = Program::new()
            .assign(
                Param::name("P"),
                OpKind::Product,
                vec![Param::name("R"), Param::name("S")],
            )
            .assign(Param::name("T"), select, vec![Param::name("P")]);
        let f = run(&fused, &db, &EvalLimits::default()).expect("fused run");
        let p = run(&pipeline, &db, &EvalLimits::default()).expect("pipeline run");
        prop_assert_eq!(
            f.table(Symbol::name("T")).expect("fused output"),
            p.table(Symbol::name("T")).expect("pipeline output")
        );
    }

    #[test]
    fn fused_join_kernel_matches_pipeline_on_forced_keys(
        mut r in arb_table(),
        mut s in arb_table(),
    ) {
        // Overwrite one column attribute per operand with keys outside the
        // generator pool, so fusability is guaranteed and it is the hash
        // kernel — not the definitional fallback — being compared against
        // the unfused pipeline, including on ⊥-heavy key columns.
        let (ka, kb) = (Symbol::name("JoinA"), Symbol::name("JoinB"));
        r.set(0, 1, ka);
        s.set(0, 1, kb);
        let cols = ops::fusable_join_cols(&r, &s, ka, kb).expect("unique opposite keys");
        prop_assert_eq!(cols.left, 1);
        prop_assert_eq!(cols.right, 1);
        let name = Symbol::name("T");
        let fused = ops::join(&r, &s, cols, name);
        let pipeline = ops::select(&ops::product(&r, &s, name), ka, kb, name);
        prop_assert_eq!(fused, pipeline);
    }

    // ------------------------------------------------------------------
    // Restructuring fusion (optimizer):
    // FUSEDRESTRUCTURE ≡ PURGE ∘ CLEANUP ∘ GROUP
    // ------------------------------------------------------------------

    #[test]
    fn fused_restructure_op_equals_staged_chain(
        mut r in arb_table(),
        (a, b) in (arb_symbol(), arb_symbol()),
        (k, o) in (arb_symbol(), arb_symbol()),
    ) {
        // The fused operator is *defined* as the staged chain: whether the
        // single-pass kernel applies or evaluation falls back to staging,
        // the visible result must be identical — on messy tables too
        // (repeated attributes, ⊥ in parameters, attributes absent from
        // the operand). Covered for both the 3-op chain and the 2-op
        // CLEANUP ∘ GROUP prefix.
        r.set_name(Symbol::name("R"));
        let db = Database::from_tables([r]);
        for with_purge in [true, false] {
            let purge = with_purge.then(|| (Param::sym(b), Param::sym(a)));
            let fused = Program::new().assign(
                Param::name("T"),
                OpKind::FusedRestructure(Box::new(RestructureChain {
                    group_by: Param::sym(a),
                    group_on: Param::sym(b),
                    cleanup_by: Param::sym(k),
                    cleanup_on: Param::sym(o),
                    purge,
                })),
                vec![Param::name("R")],
            );
            let mut staged = Program::new()
                .assign(
                    Param::name("G"),
                    OpKind::Group { by: Param::sym(a), on: Param::sym(b) },
                    vec![Param::name("R")],
                )
                .assign(
                    Param::name("T"),
                    OpKind::CleanUp { by: Param::sym(k), on: Param::sym(o) },
                    vec![Param::name("G")],
                );
            if with_purge {
                staged = Program::new()
                    .assign(
                        Param::name("G"),
                        OpKind::Group { by: Param::sym(a), on: Param::sym(b) },
                        vec![Param::name("R")],
                    )
                    .assign(
                        Param::name("C2"),
                        OpKind::CleanUp { by: Param::sym(k), on: Param::sym(o) },
                        vec![Param::name("G")],
                    )
                    .assign(
                        Param::name("T"),
                        OpKind::Purge { on: Param::sym(b), by: Param::sym(a) },
                        vec![Param::name("C2")],
                    );
            }
            let f = run(&fused, &db, &EvalLimits::default()).expect("fused run");
            let s = run(&staged, &db, &EvalLimits::default()).expect("staged run");
            prop_assert_eq!(
                f.table(Symbol::name("T")).expect("fused output"),
                s.table(Symbol::name("T")).expect("staged output"),
                "with_purge = {}", with_purge
            );
        }
    }

    #[test]
    fn fused_restructure_kernel_matches_staged_on_pivot_shape(t in arb_fact_table()) {
        // `arb_fact_table` keeps one fact per (K, C), so the pivot chain
        // is conflict-free and the single-pass kernel *must* apply (no
        // vacuous pass through the fallback) and reproduce the staged
        // pipeline byte for byte.
        let spec = ops::RestructureSpec {
            group_by: SymbolSet::from_iter([Symbol::name("C")]),
            group_on: SymbolSet::from_iter([Symbol::name("M")]),
            cleanup_by: SymbolSet::from_iter([Symbol::name("K")]),
            cleanup_on: SymbolSet::from_iter([Symbol::Null]),
            purge: Some((
                SymbolSet::from_iter([Symbol::name("M")]),
                SymbolSet::from_iter([Symbol::name("C")]),
            )),
        };
        let name = Symbol::name("Pivoted");
        let fused = ops::fused_restructure(&t, &spec, name);
        prop_assert!(fused.is_some(), "kernel must apply to the conflict-free pivot shape");
        let g = ops::group(&t, &spec.group_by, &spec.group_on, name);
        let c = ops::cleanup(&g, &spec.cleanup_by, &spec.cleanup_on, name);
        let (p_on, p_by) = spec.purge.as_ref().expect("pivot spec purges");
        let staged = ops::purge(&c, p_on, p_by, name);
        prop_assert_eq!(fused.expect("checked above"), staged);
    }

    #[test]
    fn purge_and_cleanup_commute_on_grouped_fact_tables(t in arb_fact_table()) {
        // §3.4: on a grouped table the two redundancy removals act on
        // disjoint axes — the clean-up merges data rows (keyed by row
        // attribute and carried subtuple), the purge merges copy-block
        // columns (keyed by header tuple) — and with one fact per (K, C)
        // no merged cell ever receives two non-⊥ contributions, so the
        // paper's composition order is immaterial.
        let by = SymbolSet::from_iter([Symbol::name("C")]);
        let on = SymbolSet::from_iter([Symbol::name("M")]);
        let keys = SymbolSet::from_iter([Symbol::name("K")]);
        let rows = SymbolSet::from_iter([Symbol::Null]);
        let g = ops::group(&t, &by, &on, Symbol::name("G"));
        let cleanup_first = {
            let c = ops::cleanup(&g, &keys, &rows, Symbol::name("T"));
            ops::purge(&c, &on, &by, Symbol::name("T"))
        };
        let purge_first = {
            let p = ops::purge(&g, &on, &by, Symbol::name("T"));
            ops::cleanup(&p, &keys, &rows, Symbol::name("T"))
        };
        prop_assert!(
            cleanup_first.equiv(&purge_first),
            "cleanup∘purge:\n{purge_first}\npurge∘cleanup:\n{cleanup_first}"
        );
    }

    #[test]
    fn pivot_unpivot_round_trip(t in arb_fact_table()) {
        prop_assume!(t.height() > 0);
        let cross = pivot(&t, Symbol::name("C"), Symbol::name("M"), &EvalLimits::default())
            .expect("pivot");
        let back = unpivot(&cross, Symbol::name("M"), Symbol::name("C"), &EvalLimits::default())
            .expect("unpivot");
        prop_assert_eq!(back.height(), t.height());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    // Parser ↔ pretty-printer round trip over generated programs.
    #[test]
    fn parser_pretty_round_trip(
        // Leading 't' keeps generated names clear of the bare keywords
        // (while/do/end/by/on), which the grammar reserves.
        target in "t[a-z0-9]{0,6}",
        attr1 in "[A-Z][a-z0-9]{0,6}",
        attr2 in "[A-Z][a-z0-9]{0,6}",
        op_idx in 0usize..8,
    ) {
        use tables_paradigm::algebra::{parser::parse, pretty::render};
        let stmt = match op_idx {
            0 => format!("{target} <- GROUP[by {{{attr1}}} on {{{attr2}}}](R)"),
            1 => format!("{target} <- MERGE[on {{{attr1}}} by {{{attr2}}}](R)"),
            2 => format!("{target} <- PROJECT[{{* \\ {attr1}}}](R)"),
            3 => format!("{target} <- SELECT[{attr1} = {attr2}](R)"),
            4 => format!("{target} <- CLEANUP[by {{{attr1}}} on {{_}}](R)"),
            5 => format!("{target} <- SPLIT[on {{{attr1}, {attr2}}}](R)"),
            6 => format!("{target} <- TUPLENEW[{attr1}](R)"),
            _ => format!("while {target} do {target} <- DIFFERENCE({target}, R) end"),
        };
        let p1 = parse(&stmt).expect("generated statement parses");
        let p2 = parse(&render(&p1)).expect("rendered form re-parses");
        prop_assert_eq!(p1, p2);
    }
}

// ----------------------------------------------------------------------
// The parser faces untrusted wire input (the query service feeds request
// bodies straight into it): on arbitrary garbage it must return
// `Err(Parse)` or a valid program — never panic, and never recurse
// past its depth cap (a stack overflow aborts the whole service).
// ----------------------------------------------------------------------

/// A valid program exercising every operation, used as the seed for the
/// truncation property below.
const TRUNCATION_SEED: &str = "T <- UNION(R, S)\n\
     T <- RENAME[A -> B](R)\n\
     T <- PROJECT[{A, * \\ B}](R)\n\
     T <- SELECTCONST[A = v:50](R)\n\
     T <- GROUP[by {Region} on {Sold}](R)\n\
     T <- FUSEDRESTRUCTURE[group by {Region} on {Sold} cleanup by {Part} on {_} purge on {Sold} by {Region}](R)\n\
     T <- SWITCH[(Region, \"quoted \\\" string\")](R)\n\
     while T do T2 <- DIFFERENCE(T, *1) end\n";

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Arbitrary byte strings (lossily decoded, as the service decodes
    /// request bodies) parse to `Ok` or `Err`, never a panic.
    #[test]
    fn parser_never_panics_on_arbitrary_bytes(
        bytes in proptest::collection::vec(0u8..=255, 0..256),
    ) {
        use tables_paradigm::algebra::parser::parse;
        let src = String::from_utf8_lossy(&bytes);
        let _ = parse(&src);
    }

    /// Strings over the grammar's own alphabet — keywords, operators,
    /// brackets, tags, quotes, multibyte identifiers — hit far deeper
    /// parser paths than uniform bytes; still no panics.
    #[test]
    fn parser_never_panics_on_token_soup(
        src in "[a-zA-Z0-9_vn:×λ京\\-<>=\\(\\)\\[\\]\\{\\}\\n,\\\\*\"' .]{0,120}",
    ) {
        use tables_paradigm::algebra::parser::parse;
        let _ = parse(&src);
    }

    /// Truncating a valid program at any byte (snapped to a char
    /// boundary), optionally with garbage appended at the cut, never
    /// panics.
    #[test]
    fn parser_never_panics_on_truncated_programs(
        cut in 0usize..1024,
        tail in "[a-z\\(\\[\\{\"\\\\]{0,8}",
    ) {
        use tables_paradigm::algebra::parser::parse;
        let mut cut = cut.min(TRUNCATION_SEED.len());
        while !TRUNCATION_SEED.is_char_boundary(cut) {
            cut -= 1;
        }
        let truncated = &TRUNCATION_SEED[..cut];
        let _ = parse(truncated);
        let _ = parse(&format!("{truncated}{tail}"));
    }
}

// ----------------------------------------------------------------------
// Degenerate-shape pins for GROUP and the fused restructuring kernel.
// ----------------------------------------------------------------------

/// The pivot-shaped spec over `Facts(K, C, M)` used by the proptests
/// above, shared by the degenerate pins.
fn facts_pivot_spec() -> ops::RestructureSpec {
    ops::RestructureSpec {
        group_by: SymbolSet::from_iter([Symbol::name("C")]),
        group_on: SymbolSet::from_iter([Symbol::name("M")]),
        cleanup_by: SymbolSet::from_iter([Symbol::name("K")]),
        cleanup_on: SymbolSet::from_iter([Symbol::Null]),
        purge: Some((
            SymbolSet::from_iter([Symbol::name("M")]),
            SymbolSet::from_iter([Symbol::name("C")]),
        )),
    }
}

fn staged_facts_pivot(t: &Table, name: Symbol) -> Table {
    let spec = facts_pivot_spec();
    let g = ops::group(t, &spec.group_by, &spec.group_on, name);
    let c = ops::cleanup(&g, &spec.cleanup_by, &spec.cleanup_on, name);
    let (p_on, p_by) = spec.purge.expect("pivot spec purges");
    ops::purge(&c, &p_on, &p_by, name)
}

#[test]
fn group_and_fused_restructure_pin_the_empty_table() {
    let empty = Table::relational("Facts", &["K", "C", "M"], &[]);
    let by = SymbolSet::from_iter([Symbol::name("C")]);
    let on = SymbolSet::from_iter([Symbol::name("M")]);
    let g = ops::group(&empty, &by, &on, Symbol::name("G"));
    // No data rows means no copy blocks: the grouped table is just the
    // carried K column under the one C header row, entirely ⊥.
    assert_eq!((g.height(), g.width()), (1, 1), "group of nothing:\n{g}");
    let fused = ops::fused_restructure(&empty, &facts_pivot_spec(), Symbol::name("T"))
        .expect("kernel applies to the empty pivot shape");
    assert_eq!(fused, staged_facts_pivot(&empty, Symbol::name("T")));
    assert_eq!(
        (fused.height(), fused.width()),
        (1, 1),
        "empty cross-tab keeps only the header row:\n{fused}"
    );
}

#[test]
fn group_and_fused_restructure_pin_the_singleton_table() {
    let one = Table::relational("Facts", &["K", "C", "M"], &[&["k0", "c0", "7"]]);
    let by = SymbolSet::from_iter([Symbol::name("C")]);
    let on = SymbolSet::from_iter([Symbol::name("M")]);
    let g = ops::group(&one, &by, &on, Symbol::name("G"));
    // One data row makes exactly one copy block: the carried K column
    // plus one grouped M column, under one C header row.
    assert_eq!(g.width(), 2, "singleton grouping blows up to K + 1·M:\n{g}");
    let fused = ops::fused_restructure(&one, &facts_pivot_spec(), Symbol::name("T"))
        .expect("kernel applies to the singleton pivot shape");
    assert_eq!(fused, staged_facts_pivot(&one, Symbol::name("T")));
    // The singleton cross-tab: a header row naming the one category and a
    // data row carrying (k0, 7).
    assert_eq!(
        fused.width(),
        2,
        "cross-tab is K + one category column:\n{fused}"
    );
    assert_eq!(
        fused.height(),
        2,
        "cross-tab is one header + one data row:\n{fused}"
    );
}
