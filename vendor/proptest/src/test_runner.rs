//! The shim's test driver: deterministic RNG, run configuration, and the
//! case loop with rejection retries (no shrinking).

use crate::strategy::Strategy;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// SplitMix64-backed RNG used by all strategies.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `0..n` (`n > 0`).
    pub fn below(&mut self, n: usize) -> usize {
        self.below64(n as u64) as usize
    }

    /// Uniform draw from `0..n` (`n > 0`), 64-bit.
    pub fn below64(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below: empty range");
        ((u128::from(self.next_u64()) * u128::from(n)) >> 64) as u64
    }
}

/// Run configuration. Mirrors the reference crate's field names for the
/// struct-update syntax (`Config { cases: 64, ..Default::default() }`).
#[derive(Clone, Debug)]
pub struct Config {
    /// Number of successful cases required per test.
    pub cases: u32,
    /// Upper bound on rejected (`prop_assume!`) cases across the run.
    pub max_global_rejects: u32,
}

impl Config {
    pub fn with_cases(cases: u32) -> Self {
        Config {
            cases,
            ..Default::default()
        }
    }
}

impl Default for Config {
    fn default() -> Self {
        Config {
            cases: 256,
            max_global_rejects: 65_536,
        }
    }
}

/// Why a single case did not pass.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TestCaseError {
    /// The case asked to be discarded (`prop_assume!`); retried.
    Reject(String),
    /// The case failed (`prop_assert!`); aborts the run.
    Fail(String),
}

impl TestCaseError {
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError::Fail(reason.into())
    }

    pub fn reject(reason: impl Into<String>) -> Self {
        TestCaseError::Reject(reason.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Reject(r) => write!(f, "case rejected: {r}"),
            TestCaseError::Fail(r) => write!(f, "case failed: {r}"),
        }
    }
}

/// Why the whole run failed.
pub enum TestError<V> {
    /// A case failed; carries the reason and the generated input.
    Fail(String, V),
    /// The run could not complete (e.g. rejection budget exhausted).
    Abort(String),
}

impl<V: fmt::Debug> fmt::Debug for TestError<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestError::Fail(reason, value) => {
                write!(f, "test failed: {reason}\nminimal-effort input: {value:#?}")
            }
            TestError::Abort(reason) => write!(f, "test aborted: {reason}"),
        }
    }
}

/// Per-process counter so distinct runners explore distinct sequences.
static RUNNER_SEQ: AtomicU64 = AtomicU64::new(0);

pub struct TestRunner {
    config: Config,
    rng: TestRng,
}

impl TestRunner {
    pub fn new(config: Config) -> Self {
        let base = match std::env::var("PROPTEST_SEED") {
            Ok(s) => s.parse().unwrap_or(0xC0FF_EE00_D15E_A5E5),
            Err(_) => 0xC0FF_EE00_D15E_A5E5,
        };
        let seq = RUNNER_SEQ.fetch_add(1, Ordering::Relaxed);
        TestRunner {
            config,
            rng: TestRng::new(base ^ seq.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        }
    }

    pub fn run<S: Strategy>(
        &mut self,
        strategy: &S,
        test: impl Fn(S::Value) -> Result<(), TestCaseError>,
    ) -> Result<(), TestError<S::Value>>
    where
        S::Value: Clone,
    {
        let mut passed = 0u32;
        let mut rejected = 0u32;
        while passed < self.config.cases {
            let value = strategy.generate(&mut self.rng);
            match test(value.clone()) {
                Ok(()) => passed += 1,
                Err(TestCaseError::Reject(_)) => {
                    rejected += 1;
                    if rejected > self.config.max_global_rejects {
                        return Err(TestError::Abort(format!(
                            "too many rejected cases ({rejected}) after {passed} passes"
                        )));
                    }
                }
                Err(TestCaseError::Fail(reason)) => {
                    return Err(TestError::Fail(
                        format!("{reason} (after {passed} passing cases)"),
                        value,
                    ));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_counts_only_passing_cases() {
        let mut runner = TestRunner::new(Config {
            cases: 50,
            ..Default::default()
        });
        let attempts = std::cell::Cell::new(0u32);
        runner
            .run(&(0u8..100), |v| {
                attempts.set(attempts.get() + 1);
                if v % 2 == 0 {
                    Err(TestCaseError::reject("odd only"))
                } else {
                    Ok(())
                }
            })
            .unwrap();
        assert!(
            attempts.get() >= 50,
            "ran at least `cases` attempts, got {}",
            attempts.get()
        );
    }

    #[test]
    fn failures_carry_reason_and_value() {
        let mut runner = TestRunner::new(Config {
            cases: 10,
            ..Default::default()
        });
        let err = runner
            .run(&(5u8..6), |v| {
                Err(TestCaseError::fail(format!("boom on {v}")))
            })
            .unwrap_err();
        match err {
            TestError::Fail(reason, value) => {
                assert!(reason.contains("boom"));
                assert_eq!(value, 5);
            }
            TestError::Abort(_) => panic!("expected failure, not abort"),
        }
    }

    #[test]
    fn exhausted_rejections_abort() {
        let mut runner = TestRunner::new(Config {
            cases: 10,
            max_global_rejects: 20,
        });
        let err = runner
            .run(&(0u8..10), |_| Err(TestCaseError::reject("never")))
            .unwrap_err();
        assert!(matches!(err, TestError::Abort(_)));
    }

    #[test]
    fn seeding_is_deterministic_per_sequence() {
        let mut a = TestRng::new(1);
        let mut b = TestRng::new(1);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
