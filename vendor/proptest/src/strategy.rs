//! Value-generation strategies: the composable core of the shim.

use crate::test_runner::TestRng;

/// A recipe for generating random values of an associated type.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generate a value, then generate from the strategy it induces.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Always produces a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;

    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

trait DynStrategy<V> {
    fn dyn_generate(&self, rng: &mut TestRng) -> V;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn dyn_generate(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased strategy (see [`Strategy::boxed`]).
pub struct BoxedStrategy<V>(Box<dyn DynStrategy<V>>);

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        self.0.dyn_generate(rng)
    }
}

/// Weighted choice between boxed strategies (built by `prop_oneof!`).
pub struct Union<V> {
    arms: Vec<(u32, BoxedStrategy<V>)>,
    total: u64,
}

impl<V> Union<V> {
    pub fn new(arms: Vec<(u32, BoxedStrategy<V>)>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        let total = arms.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(total > 0, "prop_oneof! weights sum to zero");
        Union { arms, total }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let mut roll = rng.below64(self.total);
        for (weight, arm) in &self.arms {
            let w = u64::from(*weight);
            if roll < w {
                return arm.generate(rng);
            }
            roll -= w;
        }
        unreachable!("weighted roll exceeded total weight")
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "strategy range is empty");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(rng.below64(span) as $t)
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "strategy range is empty");
                let span = (hi as i128 - lo as i128) as u64;
                lo.wrapping_add(rng.below64(span.wrapping_add(1)) as $t)
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<char> {
    type Value = char;

    fn generate(&self, rng: &mut TestRng) -> char {
        let (lo, hi) = (self.start as u32, self.end as u32);
        assert!(lo < hi, "strategy range is empty");
        loop {
            if let Some(c) = char::from_u32(lo + rng.below64(u64::from(hi - lo)) as u32) {
                return c;
            }
        }
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A 0)
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
    (A 0, B 1, C 2, D 3, E 4, F 5)
}

// ---------------------------------------------------------------------
// Regex-subset string strategies: `"t[a-z0-9]{0,6}"` et al.
// ---------------------------------------------------------------------

/// One pattern element: a literal character or a character class.
enum Atom {
    Lit(char),
    Class(Vec<char>),
}

struct Piece {
    atom: Atom,
    min: usize,
    max: usize,
}

/// Parse the regex subset used by the workspace's tests: literal
/// characters, `\x` escapes, `[...]` classes with ranges and escapes, and
/// `{m}` / `{m,n}` counted repetition. Anything else is rejected loudly.
fn parse_pattern(pattern: &str) -> Vec<Piece> {
    let mut chars = pattern.chars().peekable();
    let mut pieces = Vec::new();
    while let Some(c) = chars.next() {
        let atom = match c {
            '[' => {
                let mut members = Vec::new();
                loop {
                    let m = chars
                        .next()
                        .unwrap_or_else(|| panic!("unterminated class in {pattern:?}"));
                    match m {
                        ']' => break,
                        '\\' => {
                            members.push(unescape(chars.next().expect("dangling escape in class")))
                        }
                        _ => {
                            if chars.peek() == Some(&'-')
                                && chars.clone().nth(1).is_some_and(|x| x != ']')
                            {
                                chars.next();
                                let hi = match chars.next().expect("unterminated range") {
                                    '\\' => unescape(chars.next().expect("dangling escape")),
                                    other => other,
                                };
                                assert!(m <= hi, "inverted class range in {pattern:?}");
                                members.extend(m..=hi);
                            } else {
                                members.push(m);
                            }
                        }
                    }
                }
                assert!(!members.is_empty(), "empty class in {pattern:?}");
                Atom::Class(members)
            }
            '\\' => Atom::Lit(unescape(chars.next().expect("dangling escape"))),
            '{' | '}' | '*' | '+' | '?' | '(' | ')' | '|' | '.' | '$' | '^' => {
                panic!("unsupported regex feature {c:?} in pattern {pattern:?}")
            }
            _ => Atom::Lit(c),
        };
        let (min, max) = if chars.peek() == Some(&'{') {
            chars.next();
            let mut spec = String::new();
            loop {
                match chars.next().expect("unterminated repetition") {
                    '}' => break,
                    d => spec.push(d),
                }
            }
            match spec.split_once(',') {
                Some((lo, hi)) => (
                    lo.trim().parse().expect("bad repetition bound"),
                    hi.trim().parse().expect("bad repetition bound"),
                ),
                None => {
                    let n = spec.trim().parse().expect("bad repetition count");
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        assert!(min <= max, "inverted repetition in {pattern:?}");
        pieces.push(Piece { atom, min, max });
    }
    pieces
}

fn unescape(c: char) -> char {
    match c {
        'n' => '\n',
        't' => '\t',
        'r' => '\r',
        '0' => '\0',
        other => other,
    }
}

impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let pieces = parse_pattern(self);
        let mut out = String::new();
        for piece in &pieces {
            let count = piece.min + rng.below(piece.max - piece.min + 1);
            for _ in 0..count {
                match &piece.atom {
                    Atom::Lit(c) => out.push(*c),
                    Atom::Class(members) => out.push(members[rng.below(members.len())]),
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    fn rng() -> TestRng {
        TestRng::new(42)
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = rng();
        for _ in 0..1000 {
            let v = (3u8..9).generate(&mut r);
            assert!((3..9).contains(&v));
            let w = (0usize..1).generate(&mut r);
            assert_eq!(w, 0);
        }
    }

    #[test]
    fn map_and_flat_map_compose() {
        let mut r = rng();
        let s = (1usize..4)
            .prop_flat_map(|n| crate::collection::vec(0u8..10, n).prop_map(move |v| (n, v)));
        for _ in 0..200 {
            let (n, v) = s.generate(&mut r);
            assert_eq!(v.len(), n);
        }
    }

    #[test]
    fn union_respects_weights_roughly() {
        let mut r = rng();
        let s = Union::new(vec![(9, Just(true).boxed()), (1, Just(false).boxed())]);
        let hits = (0..1000).filter(|_| s.generate(&mut r)).count();
        assert!((700..1000).contains(&hits), "weighted arm hit {hits}/1000");
    }

    #[test]
    fn string_patterns_match_their_own_grammar() {
        let mut r = rng();
        for _ in 0..500 {
            let s = "t[a-z0-9]{0,6}".generate(&mut r);
            assert!(s.starts_with('t') && s.len() <= 7);
            assert!(s[1..]
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit()));

            let c = "[A-Z][a-z0-9]{0,6}".generate(&mut r);
            assert!(c.chars().next().unwrap().is_ascii_uppercase());

            let esc = "[A-Za-z0-9_<\\-\\(\\)\\[\\]\\{\\},\\\\*:=\" \n]{0,80}".generate(&mut r);
            assert!(esc.len() <= 80);
        }
    }

    #[test]
    fn exact_repetition_counts() {
        let mut r = rng();
        for _ in 0..100 {
            assert_eq!("[ab]{4}".generate(&mut r).len(), 4);
        }
    }
}
