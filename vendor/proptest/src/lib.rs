//! Offline shim for the subset of `proptest` used by this workspace:
//! composable random-value strategies (ranges, tuples, regex-subset
//! string patterns, `prop_map`/`prop_flat_map`, weighted `prop_oneof!`,
//! `collection::vec`), a deterministic [`test_runner::TestRunner`], and
//! the `proptest!`/`prop_assert*`/`prop_assume!` macros.
//!
//! Differences from the reference implementation, by design:
//! - **no shrinking** — a failing case reports the generated value as-is;
//! - **deterministic seeding** — every run explores the same cases unless
//!   `PROPTEST_SEED` overrides the base seed, which keeps CI stable;
//! - rejections (`prop_assume!`) retry with fresh values, capped so a
//!   strategy that always rejects fails loudly instead of spinning.

pub mod strategy;

pub mod test_runner;

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Size specifications accepted by [`vec`]: an exact length or a
    /// half-open range of lengths.
    pub trait SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for std::ops::Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "vec size: empty range");
            rng.below(self.end - self.start) + self.start
        }
    }

    pub struct VecStrategy<S, Z> {
        element: S,
        size: Z,
    }

    /// A strategy for vectors whose elements come from `element` and whose
    /// length comes from `size`.
    pub fn vec<S: Strategy, Z: SizeRange>(element: S, size: Z) -> VecStrategy<S, Z> {
        VecStrategy { element, size }
    }

    impl<S: Strategy, Z: SizeRange> Strategy for VecStrategy<S, Z> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::test_runner::{TestCaseError, TestRunner};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// The body of a `proptest!` block: declares each function as a standard
/// test that drives its strategies through a [`test_runner::TestRunner`].
/// Write `#[test]` on each function, as with the reference crate.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut runner = $crate::test_runner::TestRunner::new($config);
                runner
                    .run(&($($strat,)+), |($($arg,)+)| { $body Ok(()) })
                    .unwrap();
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::test_runner::Config::default())]
            $(
                $(#[$meta])*
                fn $name($($arg in $strat),+) $body
            )*
        }
    };
}

/// Fail the current case (with a message) if the condition is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Fail the current case if the two expressions are unequal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            let msg = format!($($fmt)+);
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("{msg}\n  left: {l:?}\n right: {r:?}"),
            ));
        }
    }};
}

/// Fail the current case if the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Discard the current case (retrying with a fresh value) if the
/// condition is false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}

/// Weighted (or unweighted) choice between strategies producing the same
/// value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat)),)+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::prop_oneof![$(1 => $strat),+]
    };
}
