//! Offline shim for the subset of `serde` used by this workspace: the
//! `Serialize`/`Deserialize` trait vocabulary with sequence and string
//! support, enough for the manual impls in `tabular-core::serde_impl`
//! (tables as grids of strings, databases as sequences of tables).
//!
//! The data model is deliberately tiny — strings and sequences — because
//! that is the entire wire vocabulary the workspace serializes. Any
//! concrete format adapter implements [`ser::Serializer`] /
//! [`de::Deserializer`] over it (see the in-crate `value` test module for
//! a reference implementation).

use std::fmt;

pub mod ser {
    use super::Serialize;

    pub trait Error: Sized + std::fmt::Debug {
        fn custom<T: std::fmt::Display>(msg: T) -> Self;
    }

    pub trait SerializeSeq {
        type Ok;
        type Error: Error;

        fn serialize_element<T: ?Sized + Serialize>(
            &mut self,
            value: &T,
        ) -> Result<(), Self::Error>;
        fn end(self) -> Result<Self::Ok, Self::Error>;
    }

    pub trait Serializer: Sized {
        type Ok;
        type Error: Error;
        type SerializeSeq: SerializeSeq<Ok = Self::Ok, Error = Self::Error>;

        fn serialize_str(self, v: &str) -> Result<Self::Ok, Self::Error>;
        fn serialize_seq(self, len: Option<usize>) -> Result<Self::SerializeSeq, Self::Error>;
    }
}

pub mod de {
    use std::fmt;

    pub trait Error: Sized + fmt::Debug {
        fn custom<T: fmt::Display>(msg: T) -> Self;
    }

    pub trait SeqAccess<'de> {
        type Error: Error;

        fn next_element<T: super::Deserialize<'de>>(&mut self) -> Result<Option<T>, Self::Error>;

        fn size_hint(&self) -> Option<usize> {
            None
        }
    }

    pub trait Visitor<'de>: Sized {
        type Value;

        fn expecting(&self, formatter: &mut fmt::Formatter<'_>) -> fmt::Result;

        fn visit_str<E: Error>(self, _v: &str) -> Result<Self::Value, E> {
            Err(E::custom(Expected(&self)))
        }

        fn visit_string<E: Error>(self, v: String) -> Result<Self::Value, E> {
            self.visit_str(&v)
        }

        fn visit_seq<A: SeqAccess<'de>>(self, _seq: A) -> Result<Self::Value, A::Error> {
            Err(A::Error::custom(Expected(&self)))
        }
    }

    struct Expected<'a, V>(&'a V);

    impl<'de, V: Visitor<'de>> fmt::Display for Expected<'_, V> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "invalid type: expected ")?;
            self.0.expecting(f)
        }
    }

    pub trait Deserializer<'de>: Sized {
        type Error: Error;

        fn deserialize_string<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
        fn deserialize_seq<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    }
}

pub trait Serialize {
    fn serialize<S: ser::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

pub trait Deserialize<'de>: Sized {
    fn deserialize<D: de::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

pub use de::Deserializer;
pub use ser::Serializer;

impl Serialize for str {
    fn serialize<S: ser::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl Serialize for String {
    fn serialize<S: ser::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl<T: ?Sized + Serialize> Serialize for &T {
    fn serialize<S: ser::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize<S: ser::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        use ser::SerializeSeq;
        let mut seq = serializer.serialize_seq(Some(self.len()))?;
        for item in self {
            seq.serialize_element(item)?;
        }
        seq.end()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: ser::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        self.as_slice().serialize(serializer)
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: de::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct V;
        impl<'de> de::Visitor<'de> for V {
            type Value = String;

            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("a string")
            }

            fn visit_str<E: de::Error>(self, v: &str) -> Result<String, E> {
                Ok(v.to_owned())
            }
        }
        deserializer.deserialize_string(V)
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn deserialize<D: de::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct V<T>(std::marker::PhantomData<T>);
        impl<'de, T: Deserialize<'de>> de::Visitor<'de> for V<T> {
            type Value = Vec<T>;

            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("a sequence")
            }

            fn visit_seq<A: de::SeqAccess<'de>>(self, mut seq: A) -> Result<Vec<T>, A::Error> {
                let mut out = Vec::with_capacity(seq.size_hint().unwrap_or(0));
                while let Some(item) = seq.next_element()? {
                    out.push(item);
                }
                Ok(out)
            }
        }
        deserializer.deserialize_seq(V(std::marker::PhantomData))
    }
}

#[cfg(test)]
mod value {
    //! A reference format adapter over the shim's data model, used to
    //! smoke-test the trait plumbing end to end.

    use super::*;

    #[derive(Clone, Debug, PartialEq)]
    enum Value {
        Str(String),
        Seq(Vec<Value>),
    }

    #[derive(Debug, PartialEq)]
    struct VError(String);

    impl ser::Error for VError {
        fn custom<T: fmt::Display>(msg: T) -> Self {
            VError(msg.to_string())
        }
    }

    impl de::Error for VError {
        fn custom<T: fmt::Display>(msg: T) -> Self {
            VError(msg.to_string())
        }
    }

    struct ValueSerializer;

    struct SeqSerializer(Vec<Value>);

    impl ser::SerializeSeq for SeqSerializer {
        type Ok = Value;
        type Error = VError;

        fn serialize_element<T: ?Sized + Serialize>(&mut self, value: &T) -> Result<(), VError> {
            self.0.push(value.serialize(ValueSerializer)?);
            Ok(())
        }

        fn end(self) -> Result<Value, VError> {
            Ok(Value::Seq(self.0))
        }
    }

    impl ser::Serializer for ValueSerializer {
        type Ok = Value;
        type Error = VError;
        type SerializeSeq = SeqSerializer;

        fn serialize_str(self, v: &str) -> Result<Value, VError> {
            Ok(Value::Str(v.to_owned()))
        }

        fn serialize_seq(self, len: Option<usize>) -> Result<SeqSerializer, VError> {
            Ok(SeqSerializer(Vec::with_capacity(len.unwrap_or(0))))
        }
    }

    struct ValueDeserializer(Value);

    struct SeqDeserializer(std::vec::IntoIter<Value>);

    impl<'de> de::SeqAccess<'de> for SeqDeserializer {
        type Error = VError;

        fn next_element<T: Deserialize<'de>>(&mut self) -> Result<Option<T>, VError> {
            match self.0.next() {
                None => Ok(None),
                Some(v) => T::deserialize(ValueDeserializer(v)).map(Some),
            }
        }
    }

    impl<'de> de::Deserializer<'de> for ValueDeserializer {
        type Error = VError;

        fn deserialize_string<V: de::Visitor<'de>>(self, visitor: V) -> Result<V::Value, VError> {
            match self.0 {
                Value::Str(s) => visitor.visit_string(s),
                Value::Seq(_) => Err(de::Error::custom("expected string, found seq")),
            }
        }

        fn deserialize_seq<V: de::Visitor<'de>>(self, visitor: V) -> Result<V::Value, VError> {
            match self.0 {
                Value::Seq(items) => visitor.visit_seq(SeqDeserializer(items.into_iter())),
                Value::Str(_) => Err(de::Error::custom("expected seq, found string")),
            }
        }
    }

    #[test]
    fn nested_vec_of_strings_round_trips() {
        let grid: Vec<Vec<String>> =
            vec![vec!["T".into(), "A".into()], vec!["_".into(), "1".into()]];
        let value = grid.serialize(ValueSerializer).unwrap();
        let back: Vec<Vec<String>> = Deserialize::deserialize(ValueDeserializer(value)).unwrap();
        assert_eq!(back, grid);
    }

    #[test]
    fn type_mismatch_is_an_error_not_a_panic() {
        let value = Value::Str("not a seq".into());
        let r: Result<Vec<String>, VError> = Deserialize::deserialize(ValueDeserializer(value));
        assert!(r.is_err());
    }
}
