//! Offline shim for the subset of `criterion` used by this workspace's
//! benches: `Criterion::default().sample_size(n)`, benchmark groups,
//! `bench_function` / `bench_with_input`, `BenchmarkId`, `Throughput`,
//! and `Bencher::iter`, wired up by `criterion_group!`/`criterion_main!`.
//!
//! Measurement model: each benchmark runs one warm-up invocation, then
//! `sample_size` timed invocations, and reports min/mean over them on
//! stdout. When the binary is invoked by `cargo test` (cargo passes
//! `--test`, and plain `cargo test` passes filter/`--quiet` style args),
//! every benchmark runs exactly once so the suite stays fast.

use std::fmt;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box` under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// True when the binary should only smoke-run each benchmark once.
/// `cargo bench` passes `--bench` to the target; anything else (notably
/// `cargo test`, which passes `--test` or nothing) gets the quick mode,
/// as does an explicit `CRITERION_QUICK` in the environment.
fn quick_mode() -> bool {
    let bench = std::env::args().any(|a| a == "--bench");
    let test = std::env::args().any(|a| a == "--test");
    !bench || test || std::env::var_os("CRITERION_QUICK").is_some()
}

#[derive(Clone, Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    pub fn bench_function(&mut self, id: impl fmt::Display, mut f: impl FnMut(&mut Bencher)) {
        run_one(&id.to_string(), self.sample_size, &mut f);
    }
}

pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.criterion.sample_size = n;
        self
    }

    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    pub fn bench_function(
        &mut self,
        id: impl fmt::Display,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_one(
            &format!("{}/{}", self.name, id),
            self.criterion.sample_size,
            &mut f,
        );
        self
    }

    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        run_one(
            &format!("{}/{}", self.name, id),
            self.criterion.sample_size,
            &mut |b| f(b, input),
        );
        self
    }

    pub fn finish(self) {}
}

#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

pub struct Bencher {
    /// Duration of each sampled invocation of the `iter` closure.
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        // Warm-up invocation, unmeasured.
        std_black_box(f());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            std_black_box(f());
            self.samples.push(start.elapsed());
        }
    }
}

fn run_one(label: &str, sample_size: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let samples = if quick_mode() { 1 } else { sample_size };
    let mut bencher = Bencher {
        samples: Vec::with_capacity(samples),
        sample_size: samples,
    };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("bench {label:<50} (no iterations)");
        return;
    }
    let total: Duration = bencher.samples.iter().sum();
    let mean = total / bencher.samples.len() as u32;
    let min = bencher.samples.iter().min().copied().unwrap_or_default();
    println!(
        "bench {label:<50} mean {:>12.3?}  min {:>12.3?}  ({} samples)",
        mean,
        min,
        bencher.samples.len()
    );
}

/// Mirrors criterion's macro: defines a function that runs every target
/// with the given configuration.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Mirrors criterion's macro: the bench binary's `main` runs every group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_requested_samples() {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: 5,
        };
        let mut count = 0u32;
        b.iter(|| count += 1);
        assert_eq!(b.samples.len(), 5);
        assert_eq!(count, 6, "warm-up plus five samples");
    }

    #[test]
    fn group_api_chains() {
        let mut c = Criterion::default().sample_size(2);
        let mut g = c.benchmark_group("shim");
        g.throughput(Throughput::Elements(3))
            .bench_with_input(BenchmarkId::new("sq", 3), &3u64, |b, &n| {
                b.iter(|| n * n);
            })
            .bench_function(BenchmarkId::from_parameter(7), |b| b.iter(|| 7 * 7));
        g.finish();
        c.bench_function("top-level", |b| b.iter(|| 1 + 1));
    }
}
