//! Offline shim for the subset of `rand` used by this workspace:
//! `rngs::StdRng`, `SeedableRng::seed_from_u64`, and `Rng::gen_range` over
//! half-open integer ranges. The generator is SplitMix64 — deterministic,
//! fast, and statistically adequate for test-data generation (it is the
//! seeding PRNG of the reference `rand` implementation).

pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// Integer types samplable from a `Range` by `Rng::gen_range`.
pub trait SampleUniform: Copy {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as u128).wrapping_sub(lo as u128) as u128;
                // Rejection-free multiply-shift mapping; bias is < 2^-64
                // per draw, far below anything test generation can see.
                let x = rng.next_u64() as u128;
                lo.wrapping_add(((x * span) >> 64) as $t)
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

pub trait Rng: RngCore {
    fn gen_range<T: SampleUniform>(&mut self, range: std::ops::Range<T>) -> T {
        T::sample_range(self, range.start, range.end)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        (self.next_u64() as f64 / u64::MAX as f64) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// SplitMix64: passes BigCrush, one u64 of state, trivially seedable.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng { state }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&x));
        }
        let mut seen = [false; 14];
        for _ in 0..10_000 {
            seen[rng.gen_range(0usize..14)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values of a small range hit");
    }

    #[test]
    fn signed_ranges_work() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let x: i32 = rng.gen_range(-5..5);
            assert!((-5..5).contains(&x));
        }
    }
}
