//! Offline shim for the subset of `parking_lot` used by this workspace:
//! an `RwLock` whose `read`/`write` never observe poisoning (a panicked
//! writer simply passes the lock on, matching parking_lot semantics).

use std::sync::{RwLockReadGuard, RwLockWriteGuard};

pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_write_round_trip() {
        let lock = RwLock::new(1);
        *lock.write() += 1;
        assert_eq!(*lock.read(), 2);
    }

    #[test]
    fn lock_survives_a_panicked_writer() {
        let lock = std::sync::Arc::new(RwLock::new(0));
        let l2 = lock.clone();
        let _ = std::thread::spawn(move || {
            let _guard = l2.write();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*lock.read(), 0);
    }
}
